"""Data-sharded scatter-gather mining pool (``mining_backend="sharded"``).

The process backend (:mod:`repro.server.procpool`) parallelises over
*anchors*: every worker attaches the whole store, so the dataset ceiling is
one box's RAM and one request's SM+DM fans out to at most two workers.  This
backend parallelises over *data*:

* **Publishing** an epoch partitions the store into K disjoint shard stores
  (:func:`~repro.data.sharding.partition_store`) and exports each as its own
  shared-memory segment with a picklable
  :class:`~repro.data.sharding.ShardManifest`; workers attach only the
  shards routed to them (shard ``s`` lives on worker ``s % workers``), so no
  worker ever maps the full dataset.
* **Mining** one selection is one round of stateless scatter-gather run by
  the coordinator (the serving process): build the global slice exactly as
  the serial path, compute the global admissible-value filter, scatter one
  ``("cells", ...)`` spec per non-empty shard, merge the returned partial
  bincount cubes (counts, rating sums, packed coverage bitsets) and replay
  the serial kernel's DFS over the merged counts
  (:mod:`repro.core.shardmerge`) — yielding the exact candidate list the
  unsharded enumerator produces.  RHE then runs over those merged candidates
  with the same fixed-seed generator, so SM/DM/geo results are
  **bit-identical** to every other backend.
* **Epoch protocol** is the procpool's, unchanged: publish-before-swap,
  drain-then-retire (a superseded epoch's K segments unlink only once its
  in-flight tasks hit zero), :class:`~repro.errors.StaleEpochError` on
  retired epochs (the façade retries once), a monitor thread that fails
  outstanding futures with :class:`~repro.errors.PoolError` when a worker
  dies, and per-task gather deadlines raising
  :class:`~repro.errors.MiningTimeoutError`.

``workers <= 1`` runs every shard task inline through the same executor over
the same partitioned shard stores — the scatter/merge/replay path is
exercised identically, without process startup.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.shardmerge import (
    admissible_codes,
    enumerate_shard_cells,
    merged_candidates,
    shard_slice,
)
from ..data.sharding import SHARD_SCHEMES, export_shards, partition_store, slice_shards
from ..errors import (
    EmptyRatingSetError,
    MiningTimeoutError,
    PoolError,
    StaleEpochError,
)
from .procpool import _explorer_for

__all__ = ["ShardedMiningPool"]

#: The one spec kind the shard workers execute.
_CELLS = "cells"


def _execute_shard_spec(spec: tuple, stores: Dict[Tuple[int, int], Any]):
    """Run one cell-enumeration spec against an attached shard store.

    The executor shared by worker processes and the inline path.  The spec is
    ``("cells", epoch, shard_id, item_ids, interval, region, attributes,
    admissible, max_length)``; the result is ``(local_rows, cells)`` where
    ``cells`` is the shard's partial cube from
    :func:`~repro.core.shardmerge.enumerate_shard_cells`.
    """
    kind = spec[0]
    if kind != _CELLS:
        raise PoolError(f"unknown sharded mining spec kind {kind!r}")
    (_, epoch, shard_id, item_ids, interval, region, attributes, admissible,
     max_length) = spec
    store = stores.get((int(epoch), int(shard_id)))
    if store is None:
        raise StaleEpochError(
            f"no store attached for epoch {epoch} shard {shard_id}"
        )
    local = shard_slice(store, item_ids, interval, region)
    return (
        len(local),
        enumerate_shard_cells(local, attributes, admissible, max_length),
    )


def _shard_worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Loop of one persistent shard worker process.

    Messages: ``("attach", epoch, shard_id, manifest)`` maps one shard's
    segment into the ``(epoch, shard)`` cache, ``("detach", epoch)`` unmaps
    every shard of that epoch, ``("task", task_id, spec)`` executes one
    spec, ``("stop",)`` exits.  As in the process pool, payloads are pickled
    in the worker (a pathological payload can never wedge the queue feeder)
    and an attach for an already-retired epoch is skipped, never fatal.
    """
    from ..data.shm import attach_store, detach_store
    from ..errors import DataError

    stores: Dict[Tuple[int, int], Any] = {}
    while True:
        message = task_queue.get()
        tag = message[0]
        if tag == "stop":
            break
        if tag == "attach":
            _, epoch, shard_id, manifest = message
            key = (int(epoch), int(shard_id))
            if key not in stores:
                try:
                    stores[key] = attach_store(manifest)
                except DataError:
                    pass  # epoch already retired before we got here
            continue
        if tag == "detach":
            epoch = int(message[1])
            for key in [key for key in stores if key[0] == epoch]:
                detach_store(stores.pop(key))
            continue
        _, task_id, spec = message
        try:
            payload: Any = _execute_shard_spec(spec, stores)
            ok = True
        except BaseException as exc:
            payload, ok = exc, False
        try:
            blob = pickle.dumps(payload)
        except Exception:
            blob = pickle.dumps(
                PoolError(
                    f"shard worker {worker_id}: unpicklable "
                    f"{'result' if ok else 'error'} "
                    f"{type(payload).__name__}: {payload}"
                )
            )
            ok = False
        result_queue.put(("done", worker_id, task_id, ok, blob))
    for store in stores.values():
        detach_store(store)


class ShardedMiningPool:
    """Scatter-gather mining over K per-shard shared-memory segments.

    Keeps the :class:`~repro.server.procpool.ProcessMiningPool` surface where
    the façades touch it (``publish``/``retire_older``/``mine_pair``/
    ``gather``/``shutdown``/``to_dict``/``segment_names``), so
    :class:`~repro.server.api.MapRat` wires it through the same epoch
    protocol; callers branch on ``pool.kind == "sharded"``.

    Args:
        workers: worker-process count; ``0``/``1`` executes every shard spec
            inline over the same partitioned stores (bit-identical by
            construction).  Shard ``s`` is served by worker ``s % workers``,
            so ``workers < shards`` simply co-locates several shards per
            worker.
        shards: partition count K (``>= 1``; ``1`` is the degenerate mode —
            same scatter/merge/replay path over one shard).
        scheme: ``"reviewer"`` (default) or ``"region"`` — see
            :mod:`repro.data.sharding`.
        start_method: multiprocessing start method (``"spawn"`` is safe under
            the serving layer's threads).
        timeout_s: per-task gather deadline in seconds (``None``: wait
            forever).
    """

    kind = "sharded"

    def __init__(
        self,
        workers: int = 0,
        shards: int = 2,
        scheme: str = "reviewer",
        start_method: str = "spawn",
        timeout_s: Optional[float] = None,
    ) -> None:
        workers = int(workers)
        shards = int(shards)
        if workers < 0:
            raise PoolError("workers must be non-negative")
        if shards < 1:
            raise PoolError("shards must be at least 1")
        if scheme not in SHARD_SCHEMES:
            raise PoolError(
                f"unknown shard scheme {scheme!r}; expected one of {SHARD_SCHEMES}"
            )
        if timeout_s is not None and timeout_s <= 0:
            raise PoolError("timeout_s must be positive (or None)")
        self.workers = workers
        self.shards = shards
        self.scheme = scheme
        self.timeout_s = timeout_s
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._shutdown = False
        self._submitted = 0
        self._next_task_id = 0
        self._procs: List[Any] = []
        self._task_queues: List[Any] = []
        self._result_queue: Optional[Any] = None
        self._collector: Optional[threading.Thread] = None
        self._futures: Dict[int, Future] = {}
        self._task_epochs: Dict[int, int] = {}
        self._inflight: Dict[int, int] = {}
        self._exports: Dict[int, List[Any]] = {}  # epoch -> per-shard exports
        self._manifests: Dict[int, Any] = {}  # epoch -> ShardManifest
        self._shard_stores: Dict[Tuple[int, int], Any] = {}  # inline mode
        self._full_stores: Dict[int, Any] = {}  # coordinator's live epochs
        self._explorers: Dict[int, Any] = {}  # coordinator region-slice cache
        self._retiring: set = set()
        self._current_epoch: Optional[int] = None
        self._broken: Optional[str] = None
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle / epochs -----------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when shard specs run on worker processes (``workers > 1``)."""
        return self.workers > 1

    @property
    def current_epoch(self) -> Optional[int]:
        """The most recently published epoch (None before the first publish)."""
        return self._current_epoch

    def _ensure_started_locked(self) -> None:
        if self._procs or not self.parallel:
            return
        self._result_queue = self._ctx.Queue()
        for worker_id in range(self.workers):
            queue = self._ctx.Queue()
            process = self._ctx.Process(
                target=_shard_worker_main,
                args=(worker_id, queue, self._result_queue),
                name=f"maprat-shard-{worker_id}",
                daemon=True,
            )
            process.start()
            self._task_queues.append(queue)
            self._procs.append(process)
        self._collector = threading.Thread(
            target=self._collect,
            args=(self._result_queue,),
            name="maprat-shard-collector",
            daemon=True,
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._watch_workers,
            args=(list(self._procs),),
            name="maprat-shard-monitor",
            daemon=True,
        )
        self._monitor.start()

    def publish(self, store, retire_previous: bool = True) -> int:
        """Partition and export a store epoch; make it submittable.

        Same publish-before-swap contract as the process pool, but one epoch
        is K segments: the store is partitioned by the pool's scheme, each
        shard exported and attached only on its affine worker, and the
        coordinator keeps the full store (the serving snapshot — a
        reference, not a copy) for global slicing, merging and solving.
        The partition + export runs outside the pool lock.
        """
        epoch = int(store.epoch)
        with self._lock:
            if self._shutdown:
                raise PoolError("sharded mining pool is shut down")
            if epoch == self._current_epoch:
                return epoch
            parallel = self.parallel
        shard_stores = partition_store(store, self.shards, self.scheme)
        exports, manifest = (None, None)
        if parallel:
            exports, manifest = export_shards(shard_stores, self.scheme)
        with self._lock:
            if self._shutdown:
                if exports is not None:
                    for export in exports:
                        export.release()
                raise PoolError("sharded mining pool is shut down")
            if epoch == self._current_epoch:  # raced duplicate publish
                if exports is not None:
                    for export in exports:
                        export.release()
                return epoch
            if parallel:
                self._ensure_started_locked()
                self._exports[epoch] = exports
                self._manifests[epoch] = manifest
                for shard_id, export in enumerate(exports):
                    self._task_queues[shard_id % self.workers].put(
                        ("attach", epoch, shard_id, export.manifest)
                    )
            else:
                for shard_id, shard_store in enumerate(shard_stores):
                    self._shard_stores[(epoch, shard_id)] = shard_store
            self._full_stores[epoch] = store
            previous = self._current_epoch
            self._current_epoch = epoch
            if previous is not None and retire_previous:
                self._retiring.add(previous)
            self._drain_retired_locked()
            return epoch

    def retire_older(self, epoch: int) -> None:
        """Mark every live epoch older than ``epoch`` retiring; drain if idle."""
        with self._lock:
            for live in list(self._full_stores):
                if live < int(epoch):
                    self._retiring.add(live)
            self._drain_retired_locked()

    def _drain_retired_locked(self) -> None:
        """Unlink a retiring epoch's K segments once its tasks have drained."""
        for epoch in sorted(self._retiring):
            if self._inflight.get(epoch, 0) > 0:
                continue
            self._retiring.discard(epoch)
            self._full_stores.pop(epoch, None)
            self._explorers.pop(epoch, None)
            if self.parallel:
                exports = self._exports.pop(epoch, None) or []
                self._manifests.pop(epoch, None)
                for queue in self._task_queues:
                    queue.put(("detach", epoch))
                for export in exports:
                    export.release()
            else:
                for shard_id in range(self.shards):
                    self._shard_stores.pop((epoch, shard_id), None)

    def manifest_for(self, epoch: int) -> Any:
        """The :class:`~repro.data.sharding.ShardManifest` of a live epoch.

        Only parallel pools export segments; inline pools return ``None``.
        This is the seam a multi-host fleet would ship over a socket.
        """
        with self._lock:
            return self._manifests.get(int(epoch))

    # -- submission -------------------------------------------------------------------

    def submit(self, spec: tuple) -> Future:
        """Schedule one shard spec; returns a future resolving to its result.

        Shard affinity routing: the spec's shard id picks the worker queue,
        so a task always lands on the worker that attached its segment.
        Raises :class:`~repro.errors.PoolError` after shutdown or breakage
        and :class:`~repro.errors.StaleEpochError` when the epoch is no
        longer live.
        """
        future: Future = Future()
        with self._lock:
            if self._shutdown:
                raise PoolError("sharded mining pool is shut down")
            if self._broken is not None:
                raise PoolError(self._broken)
            epoch = int(spec[1])
            if epoch not in self._full_stores:
                raise StaleEpochError(
                    f"epoch {epoch} is not exported "
                    f"(current epoch: {self._current_epoch})"
                )
            self._submitted += 1
            if self.parallel:
                task_id = self._next_task_id
                self._next_task_id += 1
                self._futures[task_id] = future
                self._task_epochs[task_id] = epoch
                self._inflight[epoch] = self._inflight.get(epoch, 0) + 1
                shard_id = int(spec[2])
                self._task_queues[shard_id % self.workers].put(
                    ("task", task_id, spec)
                )
                return future
        # Inline mode executes outside the lock; the shard stores were
        # validated live above and stay referenced for the duration.
        try:
            future.set_result(_execute_shard_spec(spec, self._shard_stores))
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def gather(self, future: Future) -> Any:
        """Resolve one future under the pool's deadline.

        Raises :class:`~repro.errors.MiningTimeoutError` when the shard task
        has not finished within ``timeout_s`` — the request fails typed and
        bounded instead of hanging on a stuck shard.
        """
        try:
            return future.result(timeout=self.timeout_s)
        except FutureTimeoutError as exc:
            raise MiningTimeoutError(
                f"mining task exceeded the {self.timeout_s:g}s deadline"
            ) from exc

    # -- the coordinator --------------------------------------------------------------

    def _store_for(self, epoch: int):
        """The coordinator's full store of a live epoch (or StaleEpochError)."""
        with self._lock:
            if self._shutdown:
                raise PoolError("sharded mining pool is shut down")
            if self._broken is not None:
                raise PoolError(self._broken)
            store = self._full_stores.get(epoch)
            if store is None:
                raise StaleEpochError(
                    f"epoch {epoch} is not exported "
                    f"(current epoch: {self._current_epoch})"
                )
            return store

    def _global_slice(self, store, epoch: int, ids, interval, region):
        """The global rating slice of one selection, with the serial errors."""
        if region is None:
            return store.slice_for_items(ids, time_interval=interval)
        explorer = self._explorers.get(epoch)
        if explorer is None:
            from ..config import MiningConfig

            explorer = _explorer_for(epoch, store, MiningConfig(), self._explorers)
        rating_slice = explorer._region_slice(
            region, None if ids is None else list(ids), interval
        )
        if rating_slice is None:
            raise EmptyRatingSetError(
                f"region {region!r} has no ratings for this selection"
            )
        return rating_slice

    def _scatter_candidates(self, gslice, epoch: int, ids, interval, region, config):
        """One scatter-gather round: global filter → shard cells → merged groups."""
        from ..core.cube import CandidateEnumerator

        enumerator = CandidateEnumerator.from_config(gslice, config)
        admissible = admissible_codes(enumerator)
        attributes = enumerator.grouping_attributes
        assignment = slice_shards(gslice, self.shards, self.scheme)
        localmaps = [
            np.flatnonzero(assignment == shard_id)
            for shard_id in range(self.shards)
        ]
        futures: Dict[int, Future] = {}
        for shard_id in range(self.shards):
            if localmaps[shard_id].shape[0] == 0:
                continue  # the shard holds no row of this slice
            futures[shard_id] = self.submit(
                (
                    _CELLS,
                    epoch,
                    shard_id,
                    ids,
                    interval,
                    region,
                    attributes,
                    admissible,
                    enumerator.max_description_length,
                )
            )
        shard_results = {
            shard_id: self.gather(future) for shard_id, future in futures.items()
        }
        return merged_candidates(gslice, config, shard_results, localmaps)

    def mine_pair(
        self,
        epoch: int,
        item_ids: Optional[Sequence[int]],
        time_interval: Optional[Tuple[int, int]],
        config,
        region: Optional[str] = None,
    ) -> Tuple[Any, Any]:
        """Mine one selection's SM + DM via sharded scatter-gather.

        The façade entry point (same signature as the process pool's).  One
        scatter round computes the merged candidate list — SM and DM share
        it, exactly as the serial path enumerates the same candidates twice —
        then both solvers run on the coordinator with their own fixed-seed
        generators.  ``region`` carries the canonical state code for
        within-region mining (``config`` is then the region-adapted
        configuration, as with the process pool).
        """
        ids = None if item_ids is None else tuple(int(i) for i in item_ids)
        interval = (
            None
            if time_interval is None
            else (int(time_interval[0]), int(time_interval[1]))
        )
        epoch = int(epoch)
        store = self._store_for(epoch)
        gslice = self._global_slice(store, epoch, ids, interval, region)
        candidates = self._scatter_candidates(
            gslice, epoch, ids, interval, region, config
        )
        from ..core.miner import RatingMiner

        miner = RatingMiner(store, config)
        similarity = miner.mine_similarity(gslice, config, candidates=candidates)
        diversity = miner.mine_diversity(gslice, config, candidates=candidates)
        return similarity, diversity

    # -- gathering --------------------------------------------------------------------

    def _watch_workers(self, procs: List[Any]) -> None:
        """Fail outstanding futures if a shard worker dies unexpectedly.

        A dead shard would otherwise leave its cell task unresolved and the
        coordinator's gather blocked until (at best) the deadline; the
        monitor turns it into an immediate
        :class:`~repro.errors.PoolError`, marks the pool broken and refuses
        later submissions.
        """
        from multiprocessing.connection import wait as wait_sentinels

        while True:
            wait_sentinels([process.sentinel for process in procs])
            with self._lock:
                if self._shutdown:
                    return
                dead = [p for p in procs if not p.is_alive()]
                if not dead:
                    continue
                codes = sorted({p.exitcode for p in dead})
                self._broken = (
                    f"{len(dead)} shard worker process(es) died "
                    f"unexpectedly (exit codes {codes})"
                )
                futures = list(self._futures.values())
                self._futures.clear()
                self._task_epochs.clear()
                self._inflight.clear()
                message = self._broken
            for future in futures:
                future.set_exception(PoolError(message))
            return

    def _collect(self, result_queue) -> None:
        """Collector thread: resolve futures, drive epoch drain accounting."""
        while True:
            message = result_queue.get()
            if message[0] == "stop":
                break
            _, _worker_id, task_id, ok, blob = message
            try:
                payload: Any = pickle.loads(blob)
            except Exception as exc:  # pragma: no cover - defensive
                payload, ok = PoolError(f"undecodable worker payload: {exc}"), False
            with self._lock:
                future = self._futures.pop(task_id, None)
                epoch = self._task_epochs.pop(task_id, None)
                if epoch is not None:
                    remaining = self._inflight.get(epoch, 0) - 1
                    if remaining > 0:
                        self._inflight[epoch] = remaining
                    else:
                        self._inflight.pop(epoch, None)
                self._drain_retired_locked()
            if future is None:
                continue  # pool shut down while the task was in flight
            if ok:
                future.set_result(payload)
            else:
                future.set_exception(
                    payload
                    if isinstance(payload, BaseException)
                    else PoolError(str(payload))
                )

    # -- shutdown / reporting -----------------------------------------------------------

    @property
    def tasks_submitted(self) -> int:
        """Number of shard specs accepted over the pool's lifetime."""
        with self._lock:
            return self._submitted

    def segment_names(self) -> List[str]:
        """Names of all currently linked shard segments (diagnostics)."""
        with self._lock:
            return sorted(
                export.segment_name
                for exports in self._exports.values()
                for export in exports
            )

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop the workers and unlink every shard segment (idempotent)."""
        with self._lock:
            already = self._shutdown
            self._shutdown = True
            futures = list(self._futures.values())
            self._futures.clear()
            self._task_epochs.clear()
            self._inflight.clear()
            self._retiring.clear()
            procs, self._procs = self._procs, []
            queues, self._task_queues = self._task_queues, []
            exports = [
                export
                for per_epoch in self._exports.values()
                for export in per_epoch
            ]
            self._exports.clear()
            self._manifests.clear()
            self._shard_stores.clear()
            self._full_stores.clear()
            self._explorers.clear()
            result_queue, self._result_queue = self._result_queue, None
            collector, self._collector = self._collector, None
        if already and not procs:
            return
        for future in futures:
            future.cancel()
        for queue in queues:
            queue.put(("stop",))
        for process in procs:
            process.join(timeout=10 if wait else 0.2)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=5)
        if result_queue is not None:
            result_queue.put(("stop",))
        if collector is not None:
            collector.join(timeout=5)
        for queue in queues:
            queue.close()
        if result_queue is not None:
            result_queue.close()
        for export in exports:
            export.release()

    def __enter__(self) -> "ShardedMiningPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def to_dict(self) -> dict:
        """Status payload for the ``summary`` endpoint and diagnostics."""
        with self._lock:
            return {
                "backend": "sharded",
                "workers": self.workers,
                "shards": self.shards,
                "scheme": self.scheme,
                "parallel": self.parallel,
                "tasks_submitted": self._submitted,
                "current_epoch": self._current_epoch,
                "live_epochs": sorted(self._full_stores),
                "retiring_epochs": sorted(self._retiring),
                "broken": self._broken,
            }
