"""Plain-text rendering of explanations for terminals, logs and tests.

The demo's map is inherently visual, but a terminal rendering of the same
content (groups, averages, Likert swatches, coverage) is invaluable for
examples and debugging, and it gives the tests a cheap way to assert on the
presentation layer without parsing SVG.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.explanation import Explanation, MiningResult
from .color import LikertScale


def render_explanation_text(
    explanation: Explanation, scale: Optional[LikertScale] = None
) -> str:
    """One interpretation as an aligned text table with Likert swatches."""
    scale = scale or LikertScale()
    lines: List[str] = [
        f"{explanation.task.title()} Mining "
        f"(objective {explanation.objective:.4f}, coverage {explanation.coverage:.0%}, "
        f"solver {explanation.solver})"
    ]
    if not explanation.groups:
        lines.append("  (no groups selected)")
        return "\n".join(lines)
    label_width = max(len(group.label) for group in explanation.groups)
    for index, group in enumerate(explanation.groups, start=1):
        swatch = scale.text_swatch(group.average_rating)
        lines.append(
            f"  {index}. [{swatch}] {group.label.ljust(label_width)}  "
            f"avg {group.average_rating:.2f}  "
            f"({group.size} ratings, {group.coverage:.0%} coverage)"
        )
    return "\n".join(lines)


def render_result_text(result: MiningResult, scale: Optional[LikertScale] = None) -> str:
    """The full mining result (query summary + both interpretations) as text."""
    scale = scale or LikertScale()
    header = [
        f"Query: {result.query.description}",
        f"Items: {', '.join(result.query.item_titles) or '—'}",
        f"Ratings: {result.query.num_ratings}   "
        f"overall average {result.query.average_rating:.2f}   "
        f"mining time {result.elapsed_seconds:.3f}s",
        "",
    ]
    sections = [
        render_explanation_text(result.similarity, scale),
        "",
        render_explanation_text(result.diversity, scale),
    ]
    return "\n".join(header + sections)
