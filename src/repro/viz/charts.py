"""Small SVG charts for the exploration panels (Figure 3).

The exploration view shows a group's rating distribution, comparisons across
related groups and the evolution of a group's rating over time.  These
renderers produce dependency-free SVG strings:

* :func:`render_histogram` — rating distribution bars (1★ … 5★),
* :func:`render_bar_chart` — labelled horizontal bars (group comparisons,
  drill-down city aggregates),
* :func:`render_trend_chart` — a polyline of average rating per year (the
  time-slider view).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from ..errors import VisualizationError
from .color import LikertScale

_FONT = 'font-family="Helvetica,Arial,sans-serif"'


def _svg_document(width: float, height: float, body: Sequence[str]) -> str:
    header = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">'
    )
    return "\n".join([header, *body, "</svg>"])


def render_histogram(
    histogram: Mapping[int, int] | Mapping[float, int],
    title: str = "rating distribution",
    width: float = 320.0,
    height: float = 180.0,
    scale: Optional[LikertScale] = None,
) -> str:
    """Vertical bars of rating counts per score value."""
    scale = scale or LikertScale()
    counts = {int(round(float(k))): int(v) for k, v in histogram.items()}
    scores = list(range(int(scale.minimum), int(scale.maximum) + 1))
    maximum = max([counts.get(score, 0) for score in scores] + [1])
    margin = 28.0
    plot_width = width - 2 * margin
    plot_height = height - 2 * margin
    bar_width = plot_width / len(scores) * 0.7
    body = [f'<text x="{margin}" y="16" font-size="12" font-weight="bold" {_FONT}>'
            f"{escape(title)}</text>"]
    for index, score in enumerate(scores):
        count = counts.get(score, 0)
        bar_height = plot_height * count / maximum
        x = margin + index * plot_width / len(scores) + (plot_width / len(scores) - bar_width) / 2
        y = margin + plot_height - bar_height
        body.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_width:.1f}" '
            f'height="{bar_height:.1f}" fill="{scale.color_for(score)}">'
            f"<title>{score}★: {count}</title></rect>"
        )
        body.append(
            f'<text x="{x + bar_width / 2:.1f}" y="{margin + plot_height + 14:.1f}" '
            f'font-size="10" text-anchor="middle" {_FONT}>{score}★</text>'
        )
        body.append(
            f'<text x="{x + bar_width / 2:.1f}" y="{y - 3:.1f}" font-size="9" '
            f'text-anchor="middle" {_FONT}>{count}</text>'
        )
    return _svg_document(width, height, body)


def render_bar_chart(
    rows: Sequence[Tuple[str, float]],
    title: str = "",
    width: float = 420.0,
    value_format: str = "{:.2f}",
    max_value: Optional[float] = None,
    scale: Optional[LikertScale] = None,
) -> str:
    """Horizontal labelled bars, one per (label, value) row."""
    if not rows:
        raise VisualizationError("a bar chart needs at least one row")
    scale = scale or LikertScale()
    row_height = 22.0
    margin_top = 26.0 if title else 8.0
    height = margin_top + row_height * len(rows) + 8
    label_width = 190.0
    plot_width = width - label_width - 60
    maximum = max_value if max_value is not None else max(value for _, value in rows)
    maximum = max(maximum, 1e-9)
    body = []
    if title:
        body.append(
            f'<text x="8" y="16" font-size="12" font-weight="bold" {_FONT}>'
            f"{escape(title)}</text>"
        )
    for index, (label, value) in enumerate(rows):
        y = margin_top + index * row_height
        bar = plot_width * min(value, maximum) / maximum
        body.append(
            f'<text x="{label_width - 6:.1f}" y="{y + 14:.1f}" font-size="10" '
            f'text-anchor="end" {_FONT}>{escape(label)}</text>'
        )
        body.append(
            f'<rect x="{label_width:.1f}" y="{y + 4:.1f}" width="{bar:.1f}" height="13" '
            f'fill="{scale.color_for(value)}"/>'
        )
        body.append(
            f'<text x="{label_width + bar + 5:.1f}" y="{y + 14:.1f}" font-size="10" {_FONT}>'
            f"{escape(value_format.format(value))}</text>"
        )
    return _svg_document(width, height, body)


def render_trend_chart(
    points: Sequence[Tuple[int, float]],
    title: str = "average rating over time",
    width: float = 420.0,
    height: float = 200.0,
    scale: Optional[LikertScale] = None,
) -> str:
    """Polyline of (year, average rating) — the time-slider evolution view."""
    if not points:
        raise VisualizationError("a trend chart needs at least one point")
    scale = scale or LikertScale()
    margin = 34.0
    plot_width = width - 2 * margin
    plot_height = height - 2 * margin
    years = [year for year, _ in points]
    year_min, year_max = min(years), max(years)
    year_span = max(year_max - year_min, 1)
    body = [
        f'<text x="{margin}" y="16" font-size="12" font-weight="bold" {_FONT}>'
        f"{escape(title)}</text>"
    ]
    # Horizontal grid lines at each integer rating.
    for rating in range(int(scale.minimum), int(scale.maximum) + 1):
        y = margin + plot_height * (1 - scale.fraction(rating))
        body.append(
            f'<line x1="{margin}" y1="{y:.1f}" x2="{margin + plot_width:.1f}" '
            f'y2="{y:.1f}" stroke="#dddddd"/>'
        )
        body.append(
            f'<text x="{margin - 6:.1f}" y="{y + 3:.1f}" font-size="9" '
            f'text-anchor="end" {_FONT}>{rating}</text>'
        )
    coordinates = []
    for year, value in points:
        x = margin + plot_width * (year - year_min) / year_span
        y = margin + plot_height * (1 - scale.fraction(value))
        coordinates.append((x, y, year, value))
    polyline = " ".join(f"{x:.1f},{y:.1f}" for x, y, _, _ in coordinates)
    body.append(
        f'<polyline points="{polyline}" fill="none" stroke="#4e79a7" stroke-width="2"/>'
    )
    for x, y, year, value in coordinates:
        body.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="{scale.color_for(value)}">'
            f"<title>{year}: {value:.2f}</title></circle>"
        )
        body.append(
            f'<text x="{x:.1f}" y="{margin + plot_height + 14:.1f}" font-size="9" '
            f'text-anchor="middle" {_FONT}>{year}</text>'
        )
    return _svg_document(width, height, body)
