"""HTML reports mirroring the demo's result pages (Figures 2 and 3).

* :class:`ExplanationReport` — the "Explain Ratings" result: the query
  summary, the Similarity Mining and Diversity Mining tabs, each with its
  choropleth map and group captions (Figure 2).
* :class:`ExplorationReport` — the per-group exploration view: detailed
  statistics, comparison against related groups, city drill-down and the
  time trend (Figure 3).

Both produce a single self-contained HTML document (SVG inlined, a few lines
of CSS, no JavaScript dependencies) so that the artefacts regenerate anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from ..config import VizConfig
from ..core.explanation import Explanation, GroupExplanation, MiningResult
from ..explore.drilldown import CityAggregate
from ..explore.statistics import GroupStatistics
from ..explore.timeline import GroupTrendPoint
from .charts import render_bar_chart, render_histogram, render_trend_chart
from .choropleth import ChoroplethMap

_PAGE_CSS = """
body { font-family: Helvetica, Arial, sans-serif; margin: 24px; color: #222; }
h1 { font-size: 22px; }
h2 { font-size: 17px; margin-top: 28px; border-bottom: 1px solid #ccc; padding-bottom: 4px; }
table { border-collapse: collapse; margin: 10px 0; }
th, td { border: 1px solid #ccc; padding: 4px 10px; font-size: 13px; text-align: left; }
th { background: #f2f2f2; }
.summary { background: #f8f8f8; border: 1px solid #e0e0e0; padding: 10px 14px; font-size: 13px; }
.tab { margin-top: 16px; }
.caption { font-size: 12px; color: #555; }
""".strip()


def _html_document(title: str, body: Sequence[str]) -> str:
    return "\n".join(
        [
            "<!DOCTYPE html>",
            '<html lang="en"><head><meta charset="utf-8"/>',
            f"<title>{escape(title)}</title>",
            f"<style>{_PAGE_CSS}</style>",
            "</head><body>",
            *body,
            "</body></html>",
        ]
    )


def _groups_table(groups: Sequence[GroupExplanation]) -> str:
    rows = [
        "<table><tr><th>#</th><th>group</th><th>average rating</th>"
        "<th>ratings</th><th>coverage</th><th>state</th></tr>"
    ]
    for index, group in enumerate(groups, start=1):
        rows.append(
            "<tr>"
            f"<td>{index}</td>"
            f"<td>{escape(group.label)}</td>"
            f"<td>{group.average_rating:.2f}</td>"
            f"<td>{group.size}</td>"
            f"<td>{group.coverage:.0%}</td>"
            f"<td>{escape(group.state or '—')}</td>"
            "</tr>"
        )
    rows.append("</table>")
    return "\n".join(rows)


@dataclass
class ExplanationReport:
    """The Figure-2 page: SM and DM interpretations with choropleth maps."""

    config: VizConfig = field(default_factory=VizConfig)

    def render(self, result: MiningResult, title: str = "MapRat explanation") -> str:
        """Render the full explanation page to an HTML string."""
        choropleth = ChoroplethMap(self.config)
        query = result.query
        body: List[str] = [f"<h1>{escape(title)}</h1>"]
        body.append(
            '<div class="summary">'
            f"<b>Query:</b> {escape(query.description)}<br/>"
            f"<b>Items:</b> {escape(', '.join(query.item_titles) or '—')}<br/>"
            f"<b>Ratings:</b> {query.num_ratings} &nbsp; "
            f"<b>Overall average:</b> {query.average_rating:.2f} &nbsp; "
            f"<b>Mining time:</b> {result.elapsed_seconds:.3f}s"
            "</div>"
        )
        for explanation in result.explanations():
            body.append(f'<div class="tab"><h2>{explanation.task.title()} Mining</h2>')
            body.append(
                '<p class="caption">'
                f"objective {explanation.objective:.4f}, coverage {explanation.coverage:.0%}, "
                f"solver {escape(explanation.solver)} "
                f"({explanation.solver_iterations} iterations, "
                f"{explanation.elapsed_seconds:.3f}s)</p>"
            )
            body.append(_groups_table(explanation.groups))
            body.append(choropleth.render(explanation))
            body.append("</div>")
        return _html_document(title, body)

    def render_to_file(
        self, result: MiningResult, path: str, title: str = "MapRat explanation"
    ) -> str:
        html = self.render(result, title=title)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(html)
        return path


@dataclass
class ExplorationReport:
    """The Figure-3 page: one group explored in depth."""

    config: VizConfig = field(default_factory=VizConfig)

    def render(
        self,
        group: GroupExplanation,
        statistics: GroupStatistics,
        comparisons: Sequence[GroupStatistics] = (),
        drilldown: Sequence[CityAggregate] = (),
        trend: Sequence[GroupTrendPoint] = (),
        title: Optional[str] = None,
    ) -> str:
        """Render the exploration page of one selected group."""
        title = title or f"MapRat exploration — {group.label}"
        body: List[str] = [f"<h1>{escape(title)}</h1>"]
        body.append(
            '<div class="summary">'
            f"<b>Group:</b> {escape(group.label)}<br/>"
            f"<b>Average rating:</b> {statistics.mean:.2f} &nbsp; "
            f"<b>Ratings:</b> {statistics.size} &nbsp; "
            f"<b>Coverage:</b> {statistics.coverage:.0%} &nbsp; "
            f"<b>Lift vs all reviewers:</b> {statistics.lift:+.2f}"
            "</div>"
        )
        body.append("<h2>Rating distribution</h2>")
        body.append(render_histogram(statistics.histogram, title=""))
        if comparisons:
            body.append("<h2>Comparison with related groups</h2>")
            body.append(
                render_bar_chart(
                    [(stats.label, stats.mean) for stats in comparisons],
                    title="average rating",
                    max_value=5.0,
                )
            )
            body.append(self._statistics_table(comparisons))
        if drilldown:
            body.append("<h2>City-level drill-down</h2>")
            body.append(
                render_bar_chart(
                    [
                        (f"{agg.location} ({agg.statistics.size})", agg.statistics.mean)
                        for agg in drilldown
                    ],
                    title="average rating by city",
                    max_value=5.0,
                )
            )
        if trend:
            body.append("<h2>Evolution over time</h2>")
            body.append(
                render_trend_chart([(p.year, p.mean) for p in trend], title="")
            )
        return _html_document(title, body)

    def render_to_file(self, path: str, **kwargs) -> str:
        html = self.render(**kwargs)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(html)
        return path

    @staticmethod
    def _statistics_table(rows: Sequence[GroupStatistics]) -> str:
        parts = [
            "<table><tr><th>group</th><th>ratings</th><th>mean</th><th>std</th>"
            "<th>% positive</th><th>% negative</th><th>lift</th></tr>"
        ]
        for stats in rows:
            parts.append(
                "<tr>"
                f"<td>{escape(stats.label)}</td>"
                f"<td>{stats.size}</td>"
                f"<td>{stats.mean:.2f}</td>"
                f"<td>{stats.std:.2f}</td>"
                f"<td>{stats.share_positive:.0%}</td>"
                f"<td>{stats.share_negative:.0%}</td>"
                f"<td>{stats.lift:+.2f}</td>"
                "</tr>"
            )
        parts.append("</table>")
        return "\n".join(parts)
