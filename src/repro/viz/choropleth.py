"""SVG choropleth of one rating interpretation (the map of Figure 2).

"Each set of such objects are then rendered as a Choropleth map using the
average group rating for shading. ... Each group is also annotated with icons
that identify the attribute value pairs used to define it." (§2.3)

:class:`ChoroplethMap` takes one :class:`~repro.core.explanation.Explanation`
and produces a self-contained SVG string: every state named by a selected
group is shaded with the group's average rating on the red→green Likert
scale, annotated with the group's icon glyphs, and every other state keeps a
neutral fill.  A legend with the scale's stops is drawn underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional
from xml.sax.saxutils import escape

from ..config import VizConfig
from ..core.explanation import Explanation, GroupExplanation
from ..core.groups import GroupDescriptor
from ..errors import VisualizationError
from .color import LikertScale
from .icons import icons_for_descriptor, pin_color_for_age
from .usmap import TileGridLayout


@dataclass
class ChoroplethMap:
    """Renderer of one interpretation as a tile-grid choropleth SVG."""

    config: VizConfig = field(default_factory=VizConfig)

    def __post_init__(self) -> None:
        self.scale = LikertScale(
            low_color=self.config.low_color, high_color=self.config.high_color
        )
        self.layout = TileGridLayout(tile_size=float(self.config.tile_size))

    # -- public API ---------------------------------------------------------------

    def render(self, explanation: Explanation, title: str = "") -> str:
        """Render one interpretation to an SVG document string."""
        groups_by_state = self._groups_by_state(explanation)
        width, height = self.layout.canvas_size()
        legend_height = 46.0
        caption_height = 18.0 * max(1, len(explanation.groups))
        total_height = height + legend_height + caption_height + 10
        parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
            f'height="{total_height:.0f}" viewBox="0 0 {width:.0f} {total_height:.0f}">',
            f'<style>text{{font-family:Helvetica,Arial,sans-serif}}</style>',
        ]
        heading = title or self.config.title or f"{explanation.task.title()} Mining"
        parts.append(
            f'<text x="{self.layout.margin}" y="{self.layout.margin + 2:.0f}" '
            f'font-size="13" font-weight="bold">{escape(heading)}</text>'
        )
        parts.extend(self._render_tiles(groups_by_state))
        parts.extend(self._render_legend(height))
        parts.extend(self._render_captions(explanation, height + legend_height))
        parts.append("</svg>")
        return "\n".join(parts)

    def render_to_file(self, explanation: Explanation, path: str, title: str = "") -> str:
        """Render and write the SVG to ``path``; returns the path."""
        svg = self.render(explanation, title=title)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(svg)
        return path

    # -- pieces ------------------------------------------------------------------

    def _groups_by_state(self, explanation: Explanation) -> Dict[str, GroupExplanation]:
        groups_by_state: Dict[str, GroupExplanation] = {}
        for group in explanation.groups:
            if not group.state:
                raise VisualizationError(
                    f"group {group.label!r} has no state condition and cannot be "
                    "placed on the map; enable require_geo_anchor or drop the group"
                )
            groups_by_state.setdefault(group.state, group)
        return groups_by_state

    def _render_tiles(self, groups_by_state: Dict[str, GroupExplanation]) -> List[str]:
        parts: List[str] = []
        for tile in self.layout.tiles():
            group = groups_by_state.get(tile.state)
            if group is None:
                fill = self.config.missing_color
                tooltip = tile.name
            else:
                fill = self.scale.color_for(group.average_rating)
                tooltip = f"{group.label}: {group.average_rating:.2f}"
            parts.append(
                f'<rect x="{tile.x:.1f}" y="{tile.y:.1f}" width="{tile.size:.1f}" '
                f'height="{tile.size:.1f}" rx="4" fill="{fill}" stroke="#ffffff" '
                f'stroke-width="1.5"><title>{escape(tooltip)}</title></rect>'
            )
            label_color = "#333333" if group is None else "#ffffff"
            cx, cy = tile.center
            parts.append(
                f'<text x="{cx:.1f}" y="{cy - 4:.1f}" font-size="11" fill="{label_color}" '
                f'text-anchor="middle">{tile.state}</text>'
            )
            if group is not None:
                parts.append(
                    f'<text x="{cx:.1f}" y="{cy + 9:.1f}" font-size="9" fill="#ffffff" '
                    f'text-anchor="middle">{group.average_rating:.1f}</text>'
                )
                if self.config.show_icons:
                    parts.extend(self._render_icons(group, tile.x, tile.y))
        return parts

    def _render_icons(self, group: GroupExplanation, x: float, y: float) -> List[str]:
        descriptor = GroupDescriptor.from_dict(dict(group.pairs))
        annotations = icons_for_descriptor(descriptor)
        parts: List[str] = []
        pin = pin_color_for_age(dict(group.pairs).get("age_group"))
        for index, annotation in enumerate(annotations[:3]):
            icon_x = x + 4 + index * 13
            icon_y = y + 4
            parts.append(
                f'<circle cx="{icon_x + 5:.1f}" cy="{icon_y + 5:.1f}" r="6" '
                f'fill="{pin}" opacity="0.9">'
                f"<title>{escape(annotation['text'])}</title></circle>"
            )
            parts.append(
                f'<text x="{icon_x + 5:.1f}" y="{icon_y + 8:.1f}" font-size="8" '
                f'text-anchor="middle" fill="#ffffff">{escape(annotation["glyph"])}</text>'
            )
        return parts

    def _render_legend(self, map_height: float) -> List[str]:
        parts: List[str] = []
        y = map_height + 14
        x = self.layout.margin
        parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="11">average rating</text>'
        )
        swatch = 26.0
        for index, (rating, color) in enumerate(self.scale.legend_stops(steps=9)):
            sx = x + 100 + index * (swatch + 2)
            parts.append(
                f'<rect x="{sx:.1f}" y="{y - 10:.1f}" width="{swatch:.1f}" height="14" '
                f'fill="{color}"/>'
            )
            if index % 2 == 0:
                parts.append(
                    f'<text x="{sx + swatch / 2:.1f}" y="{y + 16:.1f}" font-size="9" '
                    f'text-anchor="middle">{rating:.1f}</text>'
                )
        return parts

    def _render_captions(self, explanation: Explanation, offset: float) -> List[str]:
        parts: List[str] = []
        for index, group in enumerate(explanation.groups):
            y = offset + 16 + index * 18
            swatch_color = self.scale.color_for(group.average_rating)
            parts.append(
                f'<rect x="{self.layout.margin:.1f}" y="{y - 10:.1f}" width="12" height="12" '
                f'fill="{swatch_color}"/>'
            )
            caption = (
                f"{group.label} — avg {group.average_rating:.2f}, "
                f"{group.size} ratings, coverage {group.coverage:.0%}"
            )
            parts.append(
                f'<text x="{self.layout.margin + 18:.1f}" y="{y:.1f}" font-size="11">'
                f"{escape(caption)}</text>"
            )
        return parts


def render_explanation_map(
    explanation: Explanation, config: Optional[VizConfig] = None, title: str = ""
) -> str:
    """Convenience wrapper: render one interpretation to an SVG string."""
    return ChoroplethMap(config or VizConfig()).render(explanation, title=title)
