"""Geo-visualization: choropleth maps, charts and the explanation report.

The Visualization module of §2.3 renders each rating interpretation "as a
Choropleth map using the average group rating for shading.  Dark red
corresponds to lowest rating while dark green denotes the highest and the
intermediate values are represented by the red-green gradient.  Each group is
also annotated with icons that identify the attribute value pairs used to
define it."

Offline we render self-contained SVG (a tile-grid map of the US states) and
HTML reports that mirror Figures 2 and 3, plus plain-text renderings for
terminals and tests.  No third-party plotting or mapping dependency is used.

The serving layer exposes this package through the ``choropleth`` endpoint
(JSON payload with the SVG string) and the ``/choropleth`` HTML route (raw
``image/svg+xml``) — see ``docs/API.md``.
"""

from .color import LikertScale, hex_to_rgb, rgb_to_hex
from .icons import icon_for_pair, icons_for_descriptor, pin_color_for_age
from .usmap import TileGridLayout
from .choropleth import ChoroplethMap, render_explanation_map
from .charts import render_bar_chart, render_histogram, render_trend_chart
from .report import ExplanationReport, ExplorationReport
from .text import render_explanation_text, render_result_text

__all__ = [
    "LikertScale",
    "hex_to_rgb",
    "rgb_to_hex",
    "icon_for_pair",
    "icons_for_descriptor",
    "pin_color_for_age",
    "TileGridLayout",
    "ChoroplethMap",
    "render_explanation_map",
    "render_bar_chart",
    "render_histogram",
    "render_trend_chart",
    "ExplanationReport",
    "ExplorationReport",
    "render_explanation_text",
    "render_result_text",
]
