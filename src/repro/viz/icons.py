"""Attribute icons: the visual glyphs annotating each group on the map (§3.1).

"The other reviewer attributes associated with the group are highlighted
through icons as a visual aid to the user.  The color of the pin holding the
icons depicts the age group of the sub-population."

Offline we encode the icons as short unicode glyphs plus a text fallback, and
the pin colours as a fixed palette keyed by age band.  The SVG and HTML
renderers draw them; the text renderer prints the fallback labels.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..core.groups import GroupDescriptor

#: Glyph and textual fallback for gender values.
GENDER_ICONS: Mapping[str, Tuple[str, str]] = {
    "M": ("♂", "male"),
    "F": ("♀", "female"),
}

#: Glyph and textual fallback per occupation (subset with distinctive glyphs;
#: everything else falls back to a generic badge).
OCCUPATION_ICONS: Mapping[str, Tuple[str, str]] = {
    "K-12 student": ("\U0001F392", "student"),
    "college/grad student": ("\U0001F393", "college student"),
    "academic/educator": ("\U0001F4D6", "educator"),
    "programmer": ("\U0001F4BB", "programmer"),
    "scientist": ("\U0001F52C", "scientist"),
    "artist": ("\U0001F3A8", "artist"),
    "writer": ("✍", "writer"),
    "doctor/health care": ("⚕", "health care"),
    "executive/managerial": ("\U0001F4BC", "executive"),
    "farmer": ("\U0001F33E", "farmer"),
    "lawyer": ("⚖", "lawyer"),
    "retired": ("\U0001F474", "retired"),
    "homemaker": ("\U0001F3E0", "homemaker"),
}

_GENERIC_OCCUPATION_ICON = ("\U0001F464", "occupation")

#: Pin colour per age band — "the color of the pin ... depicts the age group".
AGE_PIN_COLORS: Mapping[str, str] = {
    "Under 18": "#f28e2b",
    "18-24": "#edc948",
    "25-34": "#59a14f",
    "35-44": "#4e79a7",
    "45-49": "#b07aa1",
    "50-55": "#9c755f",
    "56+": "#e15759",
}

_DEFAULT_PIN_COLOR = "#7f7f7f"


def icon_for_pair(attribute: str, value: str) -> Tuple[str, str]:
    """Return ``(glyph, text)`` for one attribute/value pair.

    Location pairs return the value itself (the map already encodes them);
    age pairs return a calendar glyph with the band as text.
    """
    if attribute == "gender":
        return GENDER_ICONS.get(value, ("?", value))
    if attribute == "occupation":
        return OCCUPATION_ICONS.get(value, _GENERIC_OCCUPATION_ICON)
    if attribute == "age_group":
        return ("\U0001F4C5", value)
    if attribute in ("state", "city"):
        return ("\U0001F4CD", value)
    return ("•", f"{attribute}={value}")


def pin_color_for_age(age_group: str | None) -> str:
    """Pin colour encoding the group's age band (grey when unconstrained)."""
    if age_group is None:
        return _DEFAULT_PIN_COLOR
    return AGE_PIN_COLORS.get(age_group, _DEFAULT_PIN_COLOR)


def icons_for_descriptor(descriptor: GroupDescriptor) -> List[Dict[str, str]]:
    """Icon annotations for every non-geo pair of a group descriptor.

    Returns a list of ``{"attribute", "value", "glyph", "text", "pin_color"}``
    dictionaries ready for the SVG/HTML renderers.
    """
    annotations: List[Dict[str, str]] = []
    pin_color = pin_color_for_age(descriptor.value_of("age_group"))
    for attribute, value in descriptor.pairs:
        if attribute == "state":
            continue  # the map tile itself is the geo annotation
        glyph, text = icon_for_pair(attribute, value)
        annotations.append(
            {
                "attribute": attribute,
                "value": value,
                "glyph": glyph,
                "text": text,
                "pin_color": pin_color,
            }
        )
    return annotations
