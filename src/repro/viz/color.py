"""The red→green Likert colour scale used to shade the choropleth (§2.3, §3.1).

"We use a red (rating 1.0) to green (rating 5.0) Likert Scale for depicting
the average rating."  :class:`LikertScale` interpolates between the two
endpoint colours in RGB space and clamps out-of-scale values, so every group
average maps to a stable, reproducible fill colour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..config import MAX_RATING, MIN_RATING
from ..errors import VisualizationError


def hex_to_rgb(color: str) -> Tuple[int, int, int]:
    """Convert ``"#rrggbb"`` to an (r, g, b) tuple of 0-255 integers."""
    value = color.lstrip("#")
    if len(value) != 6:
        raise VisualizationError(f"not a #rrggbb colour: {color!r}")
    try:
        return tuple(int(value[i : i + 2], 16) for i in (0, 2, 4))  # type: ignore[return-value]
    except ValueError as exc:
        raise VisualizationError(f"not a #rrggbb colour: {color!r}") from exc


def rgb_to_hex(rgb: Tuple[int, int, int]) -> str:
    """Convert an (r, g, b) tuple to ``"#rrggbb"``."""
    if any(not 0 <= channel <= 255 for channel in rgb):
        raise VisualizationError(f"RGB channels must be within 0..255: {rgb!r}")
    return "#{:02x}{:02x}{:02x}".format(*rgb)


@dataclass(frozen=True)
class LikertScale:
    """Linear red→green scale over the rating range.

    Attributes:
        low_color: colour of the minimum rating (dark red in the paper).
        high_color: colour of the maximum rating (dark green).
        minimum: lowest rating of the scale.
        maximum: highest rating of the scale.
    """

    low_color: str = "#8b0000"
    high_color: str = "#006400"
    minimum: float = float(MIN_RATING)
    maximum: float = float(MAX_RATING)

    def __post_init__(self) -> None:
        if self.maximum <= self.minimum:
            raise VisualizationError("the rating scale maximum must exceed the minimum")
        # Validate the endpoint colours eagerly so failures surface at build time.
        hex_to_rgb(self.low_color)
        hex_to_rgb(self.high_color)

    def fraction(self, rating: float) -> float:
        """Position of a rating on the scale, clamped to [0, 1]."""
        span = self.maximum - self.minimum
        return min(1.0, max(0.0, (rating - self.minimum) / span))

    def color_for(self, rating: float) -> str:
        """Hex fill colour for an average rating."""
        t = self.fraction(rating)
        low = hex_to_rgb(self.low_color)
        high = hex_to_rgb(self.high_color)
        blended = tuple(round(l + (h - l) * t) for l, h in zip(low, high))
        return rgb_to_hex(blended)  # type: ignore[arg-type]

    def legend_stops(self, steps: int = 5) -> list[tuple[float, str]]:
        """(rating, colour) pairs for a legend with ``steps`` evenly spaced stops."""
        if steps < 2:
            raise VisualizationError("a legend needs at least two stops")
        span = self.maximum - self.minimum
        stops = []
        for index in range(steps):
            rating = self.minimum + span * index / (steps - 1)
            stops.append((round(rating, 2), self.color_for(rating)))
        return stops

    def text_swatch(self, rating: float) -> str:
        """Single-character terminal swatch (worst ``-`` … best ``#``)."""
        ladder = "-~=+#"
        index = min(len(ladder) - 1, int(self.fraction(rating) * len(ladder)))
        return ladder[index]
