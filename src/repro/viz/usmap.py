"""Tile-grid layout of the US states used by the SVG choropleth.

The paper overlays its explanations on a conventional geographic US map.
Offline we use the well-known *tile grid map* layout instead: every state is
an equal-sized square positioned to roughly preserve geography.  The layout
comes from the ``grid_col``/``grid_row`` columns of the state registry
(:mod:`repro.geo.states`); this module converts those grid coordinates into
pixel rectangles for the SVG renderer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from ..geo.states import State, grid_dimensions, states


@dataclass(frozen=True)
class Tile:
    """Pixel-space rectangle of one state tile."""

    state: str
    name: str
    x: float
    y: float
    size: float

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.size / 2.0, self.y + self.size / 2.0)


@dataclass(frozen=True)
class TileGridLayout:
    """Pixel layout of the full tile-grid map.

    Attributes:
        tile_size: side length of one state square in pixels.
        padding: gap between squares in pixels.
        margin: outer margin around the whole grid.
    """

    tile_size: float = 44.0
    padding: float = 4.0
    margin: float = 10.0

    def tile_for(self, state: State) -> Tile:
        """Pixel rectangle of one state."""
        step = self.tile_size + self.padding
        return Tile(
            state=state.code,
            name=state.name,
            x=self.margin + state.grid_col * step,
            y=self.margin + state.grid_row * step,
            size=self.tile_size,
        )

    def tiles(self) -> Iterator[Tile]:
        """All state tiles in registry order."""
        for state in states():
            yield self.tile_for(state)

    def tiles_by_code(self) -> Dict[str, Tile]:
        return {tile.state: tile for tile in self.tiles()}

    def canvas_size(self) -> Tuple[float, float]:
        """Total (width, height) in pixels of the map canvas."""
        cols, rows = grid_dimensions()
        step = self.tile_size + self.padding
        width = 2 * self.margin + cols * step - self.padding
        height = 2 * self.margin + rows * step - self.padding
        return (width, height)
