"""Command-line interface to the MapRat pipeline.

The demo's interactions are also available from the shell, which is handy for
scripting experiments and for exploring a dataset without the HTTP front-end::

    python -m repro generate --scale small --output ml-synthetic/
    python -m repro explain  --query 'title:"Toy Story"' --html figure2.html
    python -m repro explore  --query 'title:"Toy Story"' --group 0
    python -m repro timeline --query 'title:"Drifting Star"'
    python -m repro serve    --port 8912 --warm-up 10

Every subcommand either loads a MovieLens-1M style directory (``--data DIR``)
or generates the synthetic dataset at the requested ``--scale``.  Exit code 0
means success; argument and data errors exit with code 2 and a message on
stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .config import MiningConfig, PipelineConfig, ServerConfig
from .data.movielens import load_movielens_directory, write_movielens_directory
from .data.synthetic import SCALE_PRESETS, generate_dataset
from .errors import MapRatError
from .query.engine import TimeInterval
from .server.api import MapRat
from .server.app import run_server
from .viz.report import ExplanationReport
from .viz.text import render_result_text


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MapRat: meaningful explanation, interactive exploration and "
        "geo-visualization of collaborative ratings (VLDB 2012 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_dataset_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--data",
            type=Path,
            default=None,
            help="MovieLens-1M style directory (users.dat/movies.dat/ratings.dat); "
            "omitted = synthetic data",
        )
        sub.add_argument(
            "--scale",
            choices=sorted(SCALE_PRESETS),
            default="small",
            help="synthetic dataset scale when --data is not given (default: small)",
        )
        sub.add_argument("--seed", type=int, default=None, help="synthetic generator seed")

    def add_mining_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--max-groups", type=int, default=3, help="groups per interpretation")
        sub.add_argument("--coverage", type=float, default=0.25, help="minimum rating coverage")
        sub.add_argument(
            "--min-support",
            type=int,
            default=5,
            help="smallest number of ratings a candidate group may have",
        )
        sub.add_argument(
            "--no-geo-anchor",
            action="store_true",
            help="allow groups without a state condition (not map-renderable)",
        )
        sub.add_argument("--start-year", type=int, default=None, help="restrict mining to years >= this")
        sub.add_argument("--end-year", type=int, default=None, help="restrict mining to years <= this")

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset and export it")
    add_dataset_arguments(generate)
    generate.add_argument("--output", type=Path, required=True, help="directory for the .dat files")

    explain = subparsers.add_parser("explain", help="explain the ratings of a query (Figure 2)")
    add_dataset_arguments(explain)
    add_mining_arguments(explain)
    explain.add_argument("--query", required=True, help='e.g. \'title:"Toy Story"\'')
    explain.add_argument("--html", type=Path, default=None, help="write the Figure-2 HTML report here")
    explain.add_argument("--json", action="store_true", help="print the result as JSON instead of text")

    explore = subparsers.add_parser("explore", help="statistics and drill-down of one group (Figure 3)")
    add_dataset_arguments(explore)
    add_mining_arguments(explore)
    explore.add_argument("--query", required=True)
    explore.add_argument("--task", choices=("similarity", "diversity"), default="similarity")
    explore.add_argument("--group", type=int, default=0, help="index of the group to explore")
    explore.add_argument("--html", type=Path, default=None, help="write the Figure-3 HTML report here")

    timeline = subparsers.add_parser("timeline", help="time-slider view of a query (§3.1)")
    add_dataset_arguments(timeline)
    add_mining_arguments(timeline)
    timeline.add_argument("--query", required=True)
    timeline.add_argument("--min-ratings", type=int, default=20)

    serve = subparsers.add_parser("serve", help="run the HTTP front-end")
    add_dataset_arguments(serve)
    add_mining_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8912)
    serve.add_argument("--warm-up", type=int, default=0, help="pre-compute this many popular items")
    serve.add_argument(
        "--mining-backend",
        choices=("thread", "process", "sharded", "fleet"),
        default="thread",
        help="shard mining across threads (default; GIL-bound), across "
        "worker processes attached to shared-memory store snapshots "
        "(multi-core), or across data shards with a lossless "
        "scatter-gather merge ('sharded'; per-shard segments, the path "
        "to data one box cannot hold); all backends are bit-identical",
    )
    serve.add_argument(
        "--mining-workers",
        type=int,
        default=4,
        help="worker count of the mining pool (threads or processes, "
        "per --mining-backend); 0 or 1 runs mining inline",
    )
    serve.add_argument(
        "--mining-shards",
        type=int,
        default=2,
        help="shard count K of the sharded backend: each epoch is "
        "partitioned into K per-shard store segments (ignored by the "
        "other backends)",
    )
    serve.add_argument(
        "--mining-shard-scheme",
        choices=("reviewer", "region"),
        default="reviewer",
        help="row partitioning of the sharded backend: 'reviewer' (stable "
        "reviewer-id hash, even spread) or 'region' (state hash; each "
        "state's rows live wholly on one shard)",
    )
    serve.add_argument(
        "--fleet-replicas",
        type=int,
        default=2,
        help="replica factor R of the fleet backend: each shard is routed "
        "to R distinct workers on the consistent-hash ring, so the "
        "coordinator can fail over when a worker dies (ignored by the "
        "other backends)",
    )
    serve.add_argument(
        "--fleet-worker",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="address of an external fleet worker started with 'repro "
        "fleet-worker'; repeatable; omitted = spawn --mining-workers "
        "localhost worker subprocesses",
    )
    serve.add_argument(
        "--data-dir",
        type=Path,
        default=None,
        help="enable the durability subsystem in this directory: every "
        "ingest is write-ahead logged, each compaction writes an mmap-able "
        "snapshot, and startup crash-recovers to the exact pre-crash state",
    )
    serve.add_argument(
        "--wal-fsync",
        choices=("always", "batch", "never"),
        default="batch",
        help="write-ahead-log fsync policy: 'always' per record, 'batch' "
        "per ingest call (default), 'never' leaves flushing to the OS",
    )
    serve.add_argument(
        "--mining-timeout",
        type=float,
        default=None,
        help="per-request mining deadline in seconds (requests over it get "
        "a 503; requires --mining-workers > 1); default: no deadline",
    )
    serve.add_argument(
        "--http-backend",
        choices=("sync", "async"),
        default="async",
        help="serving edge: 'async' (default; asyncio keep-alive tier, "
        "mining offloaded to the pools) or 'sync' (threaded stdlib "
        "http.server fallback); routes and JSON are identical",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="bound on concurrently admitted requests; excess load is shed "
        "with 503 + Retry-After (0 disables the gate; ops endpoints "
        "always bypass it)",
    )
    serve.add_argument(
        "--api-key",
        action="append",
        default=None,
        metavar="KEY",
        help="require this API key (X-API-Key or Authorization: Bearer) on "
        "the write endpoints ingest/ingest_batch/compact/snapshot; "
        "repeatable to accept several keys; omitted = open write path",
    )
    serve.add_argument(
        "--rate-limit",
        action="append",
        default=None,
        metavar="ENDPOINT=RPS",
        help="token-bucket rate limit in requests/second for one API "
        "endpoint (breaches get 429 + Retry-After); use '*=RPS' as the "
        "default for all endpoints; repeatable",
    )
    serve.add_argument(
        "--cuboid-lattice",
        action="store_true",
        default=None,
        help="materialise the cuboid lattice at startup (and carry it "
        "across compactions incrementally), so cold explain/geo_explain "
        "candidates come from precomputed cells instead of a recursive "
        "enumeration; results are bit-identical either way (omitted: the "
        "MAPRAT_USE_LATTICE=1 environment hook decides, default off)",
    )
    serve.add_argument(
        "--lattice-budget-mb",
        type=int,
        default=512,
        help="memory budget for the materialised lattice in MiB; when the "
        "estimate or the built lattice exceeds it the server falls back "
        "to plain enumeration (default: 512)",
    )

    fleet_worker = subparsers.add_parser(
        "fleet-worker",
        help="run one fleet mining worker (TCP server for the fleet backend)",
    )
    fleet_worker.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address of the worker's TCP listener",
    )
    fleet_worker.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port; 0 (default) picks a free port and reports it on "
        "the READY line",
    )
    fleet_worker.add_argument(
        "--parent-pid",
        type=int,
        default=None,
        help="exit automatically when this process dies (set by a "
        "coordinator spawning localhost workers, so a crashed "
        "coordinator cannot leak orphans)",
    )

    return parser


def _load_dataset(args: argparse.Namespace):
    if args.data is not None:
        return load_movielens_directory(args.data)
    return generate_dataset(args.scale, seed=args.seed)


def _mining_config(args: argparse.Namespace) -> MiningConfig:
    overrides = dict(
        max_groups=args.max_groups,
        min_coverage=args.coverage,
        min_group_support=args.min_support,
        require_geo_anchor=not args.no_geo_anchor,
    )
    if args.no_geo_anchor:
        overrides["grouping_attributes"] = ("gender", "age_group", "occupation", "state")
    return MiningConfig(**overrides)


def _time_interval(args: argparse.Namespace) -> Optional[TimeInterval]:
    if args.start_year is None and args.end_year is None:
        return None
    start = args.start_year or args.end_year
    end = args.end_year or args.start_year
    return TimeInterval.for_years(start, end)


def _build_system(args: argparse.Namespace) -> MapRat:
    dataset = _load_dataset(args)
    return MapRat.for_dataset(dataset, PipelineConfig(mining=_mining_config(args)))


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_generate(args: argparse.Namespace, out) -> int:
    dataset = _load_dataset(args)
    write_movielens_directory(dataset, args.output)
    print(
        f"wrote {dataset.num_ratings} ratings / {dataset.num_reviewers} reviewers / "
        f"{dataset.num_items} movies to {args.output}",
        file=out,
    )
    return 0


def _cmd_explain(args: argparse.Namespace, out) -> int:
    system = _build_system(args)
    result = system.explain(args.query, time_interval=_time_interval(args))
    if args.json:
        print(json.dumps(result.to_dict(), indent=2), file=out)
    else:
        print(render_result_text(result), file=out)
    if args.html is not None:
        ExplanationReport().render_to_file(result, str(args.html), title=f"MapRat — {args.query}")
        print(f"wrote {args.html}", file=out)
    return 0


def _cmd_explore(args: argparse.Namespace, out) -> int:
    system = _build_system(args)
    stats = system.group_statistics(args.query, args.task, args.group, _time_interval(args))
    print(f"group: {stats.label}", file=out)
    print(
        f"  {stats.size} ratings, mean {stats.mean:.2f}, std {stats.std:.2f}, "
        f"lift {stats.lift:+.2f}",
        file=out,
    )
    print(
        "  histogram: "
        + ", ".join(f"{score}*{count}" for score, count in sorted(stats.histogram.items())),
        file=out,
    )
    print("city drill-down:", file=out)
    for aggregate in system.drill_down(args.query, args.task, args.group, _time_interval(args)):
        print(
            f"  {aggregate.location:<18s} avg {aggregate.statistics.mean:.2f} "
            f"({aggregate.statistics.size} ratings)",
            file=out,
        )
    if args.html is not None:
        html = system.exploration_html(args.query, args.task, args.group, _time_interval(args))
        Path(args.html).write_text(html, encoding="utf-8")
        print(f"wrote {args.html}", file=out)
    return 0


def _cmd_timeline(args: argparse.Namespace, out) -> int:
    system = _build_system(args)
    for timeline_slice in system.timeline(args.query, min_ratings=args.min_ratings):
        if timeline_slice.result is None:
            print(
                f"{timeline_slice.year}: {timeline_slice.num_ratings} ratings (not mined)",
                file=out,
            )
            continue
        labels = ", ".join(timeline_slice.labels("similarity"))
        print(
            f"{timeline_slice.year}: avg "
            f"{timeline_slice.result.query.average_rating:.2f} over "
            f"{timeline_slice.num_ratings} ratings — {labels}",
            file=out,
        )
    return 0


def _parse_rate_limits(entries: Optional[Sequence[str]]) -> tuple:
    """Parse repeated ``--rate-limit endpoint=rps`` flags into config pairs."""
    if not entries:
        return ()
    limits = []
    for entry in entries:
        endpoint, separator, rate = entry.partition("=")
        if not separator or not endpoint:
            raise MapRatError(
                f"--rate-limit expects ENDPOINT=RPS, got {entry!r}"
            )
        try:
            limits.append((endpoint, float(rate)))
        except ValueError:
            raise MapRatError(
                f"--rate-limit rate must be a number, got {rate!r}"
            ) from None
    return tuple(limits)


def _cmd_serve(args: argparse.Namespace, out) -> int:
    dataset = _load_dataset(args)
    config = PipelineConfig(
        mining=_mining_config(args),
        server=ServerConfig(
            mining_backend=args.mining_backend,
            mining_workers=args.mining_workers,
            mining_shards=args.mining_shards,
            mining_shard_scheme=args.mining_shard_scheme,
            fleet_replicas=args.fleet_replicas,
            fleet_workers=tuple(args.fleet_worker or ()),
            data_dir=None if args.data_dir is None else str(args.data_dir),
            wal_fsync=args.wal_fsync,
            mining_timeout_s=args.mining_timeout,
            host=args.host,
            port=args.port,
            http_backend=args.http_backend,
            max_inflight=args.max_inflight,
            rate_limits=_parse_rate_limits(args.rate_limit),
            api_keys=tuple(args.api_key or ()),
            use_cuboid_lattice=args.cuboid_lattice,
            lattice_budget_mb=args.lattice_budget_mb,
        ),
    )
    server = run_server(dataset, config, host=args.host, port=args.port, warm_up=args.warm_up)
    print(f"MapRat serving at {server.url} (Ctrl-C to stop)", file=out)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.stop()
    return 0


def _cmd_fleet_worker(args: argparse.Namespace, out) -> int:
    from .server.fleet import serve_worker

    return serve_worker(
        host=args.host, port=args.port, parent_pid=args.parent_pid, out=out
    )


_COMMANDS = {
    "generate": _cmd_generate,
    "explain": _cmd_explain,
    "explore": _cmd_explore,
    "timeline": _cmd_timeline,
    "serve": _cmd_serve,
    "fleet-worker": _cmd_fleet_worker,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except MapRatError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
