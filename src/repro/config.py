"""Configuration objects shared across the MapRat pipeline.

The paper's user interface (Figure 1) exposes a handful of search settings —
the query, the query type, a time interval, the maximum number of groups and
the required rating coverage.  :class:`MiningConfig` captures those settings
plus the solver knobs of the Randomized Hill Exploration algorithm, and
:class:`VizConfig` captures the rendering options of the choropleth layer
(Figure 2).  Both are plain frozen dataclasses so they can be hashed and used
as part of cache keys by :mod:`repro.server.cache`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Sequence

from .errors import ConstraintError

#: Rating scale used by MovieLens and assumed throughout the paper (§2.1).
MIN_RATING = 1
MAX_RATING = 5

#: Default reviewer attributes used to describe groups (§1, §2.1).
DEFAULT_GROUPING_ATTRIBUTES = ("gender", "age_group", "occupation", "state")

#: The attribute that anchors every group on the map (§2.3, §3.1).
GEO_ATTRIBUTE = "state"


@dataclass(frozen=True)
class MiningConfig:
    """Settings for one Similarity/Diversity mining run.

    Parameters mirror the "additional search settings" of Figure 1.

    Attributes:
        max_groups: maximum number of groups returned per mining task
            ("limit the number of such chosen groups to be small enough, not
            to overwhelm a user", §2.2).
        min_coverage: minimum fraction of the input rating tuples that the
            selected groups must collectively cover.
        max_description_length: maximum number of attribute/value pairs in a
            group description, keeping groups "easily understandable".
        min_group_support: smallest number of rating tuples a candidate group
            must contain to be considered at all.
        require_geo_anchor: when True every returned group must include the
            geo attribute so it can be rendered on the map (§3.1).
        geo_anchor_attribute: which attribute anchors groups geographically.
            ``"state"`` (the default) renders on the US map; the geo explorer
            overrides it with ``"city"`` for within-region mining, so groups
            stay map-anchored one hierarchy level down.
        grouping_attributes: reviewer attributes over which the data cube of
            candidate groups is built.
        diversity_penalty: λ weight of the within-group error term subtracted
            from the Diversity Mining objective.
        rhe_restarts: number of random restarts of the RHE solver.
        rhe_max_iterations: maximum hill-climbing swaps per restart.
        seed: seed for all randomised components of the solver.
    """

    max_groups: int = 3
    min_coverage: float = 0.3
    max_description_length: int = 3
    min_group_support: int = 5
    require_geo_anchor: bool = True
    geo_anchor_attribute: str = GEO_ATTRIBUTE
    grouping_attributes: Sequence[str] = DEFAULT_GROUPING_ATTRIBUTES
    diversity_penalty: float = 0.25
    rhe_restarts: int = 8
    rhe_max_iterations: int = 200
    seed: int = 2012

    def __post_init__(self) -> None:
        if self.max_groups < 1:
            raise ConstraintError("max_groups must be at least 1")
        if not 0.0 <= self.min_coverage <= 1.0:
            raise ConstraintError("min_coverage must lie in [0, 1]")
        if self.max_description_length < 1:
            raise ConstraintError("max_description_length must be at least 1")
        if self.min_group_support < 1:
            raise ConstraintError("min_group_support must be at least 1")
        if self.diversity_penalty < 0:
            raise ConstraintError("diversity_penalty must be non-negative")
        if self.rhe_restarts < 1:
            raise ConstraintError("rhe_restarts must be at least 1")
        if self.rhe_max_iterations < 1:
            raise ConstraintError("rhe_max_iterations must be at least 1")
        # Normalise to a hashable tuple so configs can be used as cache keys.
        object.__setattr__(
            self, "grouping_attributes", tuple(self.grouping_attributes)
        )
        if (
            self.require_geo_anchor
            and self.geo_anchor_attribute not in self.grouping_attributes
        ):
            raise ConstraintError(
                "require_geo_anchor needs %r among grouping_attributes"
                % self.geo_anchor_attribute
            )

    def with_overrides(self, **changes: object) -> "MiningConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def cache_key(self) -> tuple:
        """Hashable tuple identifying this configuration for result caching."""
        return (
            self.max_groups,
            round(self.min_coverage, 6),
            self.max_description_length,
            self.min_group_support,
            self.require_geo_anchor,
            self.geo_anchor_attribute,
            tuple(self.grouping_attributes),
            round(self.diversity_penalty, 6),
            self.rhe_restarts,
            self.rhe_max_iterations,
            self.seed,
        )


@dataclass(frozen=True)
class VizConfig:
    """Rendering options for the choropleth / report layer (Figure 2).

    Attributes:
        low_color: hex colour of the lowest rating (dark red in the paper).
        high_color: hex colour of the highest rating (dark green).
        missing_color: fill for states not named by any returned group.
        tile_size: side length in pixels of one state tile of the grid map.
        show_icons: annotate groups with attribute icons.
        title: optional title rendered above the map.
    """

    low_color: str = "#8b0000"
    high_color: str = "#006400"
    missing_color: str = "#d9d9d9"
    tile_size: int = 44
    show_icons: bool = True
    title: str = ""


@dataclass(frozen=True)
class ServerConfig:
    """Settings for the latency layer and the JSON API (§2.3 "caching").

    Attributes:
        cache_capacity: maximum number of cached mining results.
        cache_ttl_seconds: optional result expiry age (None: keep forever).
        single_flight: coalesce concurrent cache misses on one key into one
            computation (the anti-stampede guarantee of the serving layer).
        mining_backend: ``"thread"`` (default) shards mining tasks across a
            ``ThreadPoolExecutor``; ``"process"`` shards them across
            persistent worker **processes** that attach the store's shared
            memory export zero-copy (true multi-core parallelism — threads
            are GIL-bound on this workload); ``"sharded"`` partitions the
            *data* into ``mining_shards`` per-shard segments and mines each
            selection by scatter-gather with a lossless coordinator merge
            (the path to datasets one box cannot hold).  All execution
            shapes (serial, thread, process, sharded) are bit-identical for
            a fixed seed.
        mining_workers: worker count of the mining pool (threads or
            processes, per ``mining_backend``); 0 or 1 runs everything
            inline.  Parallel results are bit-identical to serial ones
            (fixed per-task seeds, submission-ordered gathering).
        mining_shards: shard count K of the ``"sharded"`` backend — how many
            per-shard store segments an epoch is partitioned into (ignored
            by the other backends).  1 is the degenerate single-shard mode,
            which still routes through the scatter-gather merge.
        fleet_replicas: replica factor R of the ``"fleet"`` backend — how
            many distinct workers each shard is routed to on the
            consistent-hash ring.  R ≥ 2 lets the coordinator fail a task
            over to another replica when a worker dies mid-request; ignored
            by the other backends.
        fleet_heartbeat_s: membership probe period (seconds) of the fleet
            coordinator's heartbeat thread, which marks unresponsive
            workers dead, revives returning ones and respawns exited
            localhost workers.
        fleet_io_timeout_s: per-connection socket deadline (seconds) of the
            fleet transport — bounds connects, segment ships and single
            task round-trips, so a stuck worker fails over (or surfaces a
            typed timeout) instead of hanging a request.
        fleet_workers: external fleet worker addresses (``"host:port"``
            strings, started via ``repro fleet-worker``).  Non-empty
            switches the fleet pool to connect-only mode; empty (default)
            spawns ``mining_workers`` localhost worker subprocesses.
        mining_shard_scheme: row-partitioning scheme of the ``"sharded"``
            backend: ``"reviewer"`` (stable hash of the reviewer id — even
            spread) or ``"region"`` (hash of the reviewer's state — each
            state's rows live on one shard, so within-region mining touches
            a single shard).
        precompute_top_items: how many popular items the warm-up mines.
        precompute_top_regions: how many top regions (states by rating
            volume) the warm-up anchors: for each, the geo explanation of the
            most popular item within that region is pre-mined.
        warm_in_background: run the startup warm-up on a background thread so
            the server serves immediately while the cache fills.
        ingest_batch_size: maximum entries accepted by one ``ingest_batch``
            request (oversized batches are rejected with a 400, keeping one
            request from stalling the write path).
        auto_compact_threshold: when positive, an ingest that brings the
            append buffer to this many pending ratings triggers a compaction
            into the next epoch automatically; 0 leaves compaction to
            explicit ``compact`` calls.
        use_incremental_compaction: maintain snapshots via delta updates
            (code-column remap, index appends, delta bincounts); False
            rebuilds each snapshot from scratch — the reference path the
            differential test battery compares against.
        data_dir: directory for the durability subsystem (write-ahead log,
            snapshots, warm-restart anchors).  ``None`` (default) keeps the
            system purely in-memory; a path enables WAL-backed ingest, crash
            recovery at startup and the ``snapshot``/``recovery_info``
            endpoints.
        wal_fsync: write-ahead-log fsync policy — ``"always"`` (fsync per
            record, strongest), ``"batch"`` (fsync once per ingest call, the
            default) or ``"never"`` (leave flushing to the OS; survives
            process crashes but not power loss).
        snapshot_on_compact: write an mmap-able snapshot file (and prune
            older logs/snapshots) at every compaction; ``False`` keeps the
            full log chain and replays it on restart.
        mining_timeout_s: per-request deadline in seconds for gathering one
            mining task from the worker pool; ``None`` (default) waits
            forever.  Timed-out requests surface as 503s; the underlying
            task is not cancelled.  Only pools with ``mining_workers > 1``
            can time out — inline pools execute the task on the calling
            thread before the deadline is ever consulted.
        host: bind address of the HTTP front-end.
        port: bind port of the HTTP front-end.
        http_backend: serving edge used by ``run_server``/the CLI —
            ``"sync"`` (threaded stdlib ``http.server``, one OS thread per
            connection) or ``"async"`` (the asyncio production tier with
            keep-alive and pipelining, mining offloaded to the pools via
            ``run_in_executor``).  Both serve identical routes and
            byte-identical JSON.
        max_inflight: bound on concurrently admitted requests per edge; the
            admission gate sheds excess load with 503 + ``Retry-After``
            instead of queueing without limit.  0 disables the gate.  The
            ops endpoints (``/health``/``/version``/``/metrics``) bypass it.
        rate_limits: per-endpoint token-bucket rates in requests/second,
            as a mapping or ``(endpoint, rps)`` pairs; the pseudo-endpoint
            ``"*"`` sets a default for every API endpoint not named
            explicitly.  Breached limits answer 429 + ``Retry-After``.
            Empty (default) disables rate limiting.
        api_keys: accepted API keys for the write path (``ingest``,
            ``ingest_batch``, ``compact``, ``snapshot``).  Empty (default)
            leaves the write path open; non-empty demands a matching
            ``X-API-Key`` (or ``Authorization: Bearer``) header → 401
            otherwise.  Read endpoints are never gated.
        max_body_bytes: largest accepted request body; bigger declared
            bodies are rejected with 413 before a byte is read, so a
            hostile Content-Length cannot buffer unbounded data.  0
            disables the cap.
        use_cuboid_lattice: materialise the cuboid lattice
            (:mod:`repro.data.lattice`) at startup and carry it across
            compactions, so cold ``explain``/``geo_explain`` candidates come
            from precomputed cells instead of a recursive enumeration.
            ``None`` (default) resolves from the ``MAPRAT_USE_LATTICE=1``
            environment hook — the lever the golden-lattice CI lane flips —
            and otherwise stays off.
        lattice_budget_mb: memory budget for the materialised lattice in
            MiB.  When the pre-build estimate or the built lattice's
            resident size exceeds it, the server falls back to plain
            enumeration (the lattice is simply not attached) instead of
            holding an oversized structure resident.
    """

    cache_capacity: int = 256
    cache_ttl_seconds: float | None = None
    single_flight: bool = True
    mining_backend: str = "thread"
    mining_workers: int = 4
    mining_shards: int = 2
    mining_shard_scheme: str = "reviewer"
    fleet_replicas: int = 2
    fleet_heartbeat_s: float = 2.0
    fleet_io_timeout_s: float = 30.0
    fleet_workers: Sequence[str] = ()
    precompute_top_items: int = 50
    precompute_top_regions: int = 0
    warm_in_background: bool = True
    ingest_batch_size: int = 1000
    auto_compact_threshold: int = 0
    use_incremental_compaction: bool = True
    data_dir: str | None = None
    wal_fsync: str = "batch"
    snapshot_on_compact: bool = True
    mining_timeout_s: float | None = None
    host: str = "127.0.0.1"
    port: int = 8912
    http_backend: str = "sync"
    max_inflight: int = 64
    rate_limits: Sequence[tuple] = ()
    api_keys: Sequence[str] = ()
    max_body_bytes: int = 1 << 20
    use_cuboid_lattice: bool | None = None
    lattice_budget_mb: int = 512

    def __post_init__(self) -> None:
        if self.use_cuboid_lattice is None:
            object.__setattr__(
                self,
                "use_cuboid_lattice",
                os.environ.get("MAPRAT_USE_LATTICE", "") == "1",
            )
        if self.lattice_budget_mb < 1:
            raise ConstraintError("lattice_budget_mb must be at least 1")
        if self.cache_capacity < 1:
            raise ConstraintError("cache_capacity must be at least 1")
        if self.mining_backend not in ("thread", "process", "sharded", "fleet"):
            raise ConstraintError(
                "mining_backend must be 'thread', 'process', 'sharded' or "
                f"'fleet', got {self.mining_backend!r}"
            )
        if self.mining_workers < 0:
            raise ConstraintError("mining_workers must be non-negative")
        if self.mining_shards < 1:
            raise ConstraintError("mining_shards must be at least 1")
        if self.mining_shard_scheme not in ("reviewer", "region"):
            raise ConstraintError(
                "mining_shard_scheme must be 'reviewer' or 'region', "
                f"got {self.mining_shard_scheme!r}"
            )
        if self.fleet_replicas < 1:
            raise ConstraintError("fleet_replicas must be at least 1")
        if self.fleet_heartbeat_s <= 0:
            raise ConstraintError("fleet_heartbeat_s must be positive")
        if self.fleet_io_timeout_s <= 0:
            raise ConstraintError("fleet_io_timeout_s must be positive")
        object.__setattr__(
            self,
            "fleet_workers",
            tuple(str(address) for address in self.fleet_workers),
        )
        if self.precompute_top_items < 0:
            raise ConstraintError("precompute_top_items must be non-negative")
        if self.precompute_top_regions < 0:
            raise ConstraintError("precompute_top_regions must be non-negative")
        if self.ingest_batch_size < 1:
            raise ConstraintError("ingest_batch_size must be at least 1")
        if self.auto_compact_threshold < 0:
            raise ConstraintError("auto_compact_threshold must be non-negative")
        if self.wal_fsync not in ("always", "batch", "never"):
            raise ConstraintError(
                "wal_fsync must be 'always', 'batch' or 'never', "
                f"got {self.wal_fsync!r}"
            )
        if self.mining_timeout_s is not None and self.mining_timeout_s <= 0:
            raise ConstraintError("mining_timeout_s must be positive (or None)")
        if self.http_backend not in ("sync", "async"):
            raise ConstraintError(
                "http_backend must be 'sync' or 'async', "
                f"got {self.http_backend!r}"
            )
        if self.max_inflight < 0:
            raise ConstraintError("max_inflight must be non-negative")
        if self.max_body_bytes < 0:
            raise ConstraintError("max_body_bytes must be non-negative")
        # Normalise rate_limits (mapping or pair iterable) into a sorted,
        # hashable tuple of (endpoint, rps) pairs so the config stays frozen
        # and usable as part of cache keys.
        raw = self.rate_limits
        pairs = raw.items() if hasattr(raw, "items") else raw
        limits = []
        for pair in pairs:
            try:
                endpoint, rate = pair
            except (TypeError, ValueError):
                raise ConstraintError(
                    "rate_limits entries must be (endpoint, rps) pairs, "
                    f"got {pair!r}"
                ) from None
            rate = float(rate)
            if rate <= 0:
                raise ConstraintError(
                    f"rate limit for {endpoint!r} must be positive, got {rate}"
                )
            limits.append((str(endpoint), rate))
        object.__setattr__(self, "rate_limits", tuple(sorted(limits)))
        object.__setattr__(self, "api_keys", tuple(self.api_keys))


@dataclass(frozen=True)
class PipelineConfig:
    """Bundle of the per-layer configurations used by high-level façades."""

    mining: MiningConfig = field(default_factory=MiningConfig)
    viz: VizConfig = field(default_factory=VizConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
