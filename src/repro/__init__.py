"""MapRat reproduction: meaningful explanation, interactive exploration and
geo-visualization of collaborative ratings (VLDB 2012 demo).

Quickstart::

    from repro import MapRat, generate_dataset

    dataset = generate_dataset("small")
    maprat = MapRat.for_dataset(dataset)
    result = maprat.explain('title:"Toy Story"')
    for group in result.similarity.groups:
        print(group.label, group.average_rating)

The high-level façade :class:`~repro.server.api.MapRat` wires the whole
pipeline (query → mining → exploration → visualization → caching).  The
individual layers are importable from their subpackages: :mod:`repro.data`,
:mod:`repro.geo`, :mod:`repro.core`, :mod:`repro.query`, :mod:`repro.explore`,
:mod:`repro.viz` and :mod:`repro.server`.
"""

from .version import PAPER, __version__
from .config import (
    GEO_ATTRIBUTE,
    MAX_RATING,
    MIN_RATING,
    MiningConfig,
    PipelineConfig,
    ServerConfig,
    VizConfig,
)
from .errors import (
    CacheError,
    ConstraintError,
    DataError,
    EmptyRatingSetError,
    GeoError,
    InfeasibleProblemError,
    MapRatError,
    MiningError,
    QueryError,
    QuerySyntaxError,
    SchemaError,
    ServerError,
    VisualizationError,
)
from .data import (
    Item,
    Rating,
    RatingDataset,
    RatingStore,
    Reviewer,
    SyntheticConfig,
    SyntheticMovieLens,
    generate_dataset,
    load_movielens_directory,
)
from .core import (
    Explanation,
    GroupDescriptor,
    MiningResult,
    RandomizedHillExploration,
    RatingMiner,
)
from .geo import GeoExplorer, GeoMiningResult, RegionAggregate

__all__ = [
    "PAPER",
    "__version__",
    "GEO_ATTRIBUTE",
    "MAX_RATING",
    "MIN_RATING",
    "MiningConfig",
    "PipelineConfig",
    "ServerConfig",
    "VizConfig",
    "CacheError",
    "ConstraintError",
    "DataError",
    "EmptyRatingSetError",
    "GeoError",
    "InfeasibleProblemError",
    "MapRatError",
    "MiningError",
    "QueryError",
    "QuerySyntaxError",
    "SchemaError",
    "ServerError",
    "VisualizationError",
    "Item",
    "Rating",
    "RatingDataset",
    "RatingStore",
    "Reviewer",
    "SyntheticConfig",
    "SyntheticMovieLens",
    "generate_dataset",
    "load_movielens_directory",
    "Explanation",
    "GroupDescriptor",
    "MiningResult",
    "RandomizedHillExploration",
    "RatingMiner",
    "GeoExplorer",
    "GeoMiningResult",
    "RegionAggregate",
    "MapRat",
]


def __getattr__(name: str):
    """Lazily expose the :class:`MapRat` façade to avoid an import cycle."""
    if name == "MapRat":
        from .server.api import MapRat

        return MapRat
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
