"""Predicate tree evaluated against items of the catalogue.

A parsed query becomes a small tree of predicates: attribute/value leaf tests
combined with AND / OR / NOT.  Leaves match case-insensitively and treat
multi-valued attributes (genres, actors, directors) as "any value matches",
which is what a user expects when typing ``actor:"Tom Hanks"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..data.model import Item
from ..errors import QueryError


class ItemPredicate:
    """Interface of a node in the query predicate tree."""

    def matches(self, item: Item) -> bool:
        """Return True when the item satisfies the predicate."""
        raise NotImplementedError

    def describe(self) -> str:
        """Canonical string form of the predicate (used in cache keys)."""
        raise NotImplementedError

    # Convenience combinators for programmatic query construction.

    def __and__(self, other: "ItemPredicate") -> "AndPredicate":
        return AndPredicate((self, other))

    def __or__(self, other: "ItemPredicate") -> "OrPredicate":
        return OrPredicate((self, other))

    def __invert__(self) -> "NotPredicate":
        return NotPredicate(self)


@dataclass(frozen=True)
class AttributePredicate(ItemPredicate):
    """Leaf test ``attribute:value`` over a (possibly multi-valued) item attribute."""

    attribute: str
    value: str
    exact: bool = True

    _SUPPORTED = ("title", "genre", "actor", "director", "year")

    def __post_init__(self) -> None:
        if self.attribute not in self._SUPPORTED:
            raise QueryError(
                f"unsupported query attribute {self.attribute!r}; "
                f"expected one of {self._SUPPORTED}"
            )

    def matches(self, item: Item) -> bool:
        wanted = self.value.strip().lower()
        values = [v.lower() for v in item.attribute_values(self.attribute)]
        if self.exact:
            return wanted in values
        return any(wanted in v for v in values)

    def describe(self) -> str:
        operator = ":" if self.exact else "~"
        return f'{self.attribute}{operator}"{self.value}"'


@dataclass(frozen=True)
class TitlePredicate(AttributePredicate):
    """Shorthand leaf for the most common query type (Figure 1's Movie Name)."""

    def __init__(self, title: str, exact: bool = True) -> None:
        super().__init__(attribute="title", value=title, exact=exact)


@dataclass(frozen=True)
class AndPredicate(ItemPredicate):
    """Conjunction of child predicates."""

    children: Tuple[ItemPredicate, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise QueryError("AND needs at least one child predicate")

    def matches(self, item: Item) -> bool:
        return all(child.matches(item) for child in self.children)

    def describe(self) -> str:
        return "(" + " AND ".join(c.describe() for c in self.children) + ")"


@dataclass(frozen=True)
class OrPredicate(ItemPredicate):
    """Disjunction of child predicates."""

    children: Tuple[ItemPredicate, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise QueryError("OR needs at least one child predicate")

    def matches(self, item: Item) -> bool:
        return any(child.matches(item) for child in self.children)

    def describe(self) -> str:
        return "(" + " OR ".join(c.describe() for c in self.children) + ")"


@dataclass(frozen=True)
class NotPredicate(ItemPredicate):
    """Negation of a child predicate."""

    child: ItemPredicate

    def matches(self, item: Item) -> bool:
        return not self.child.matches(item)

    def describe(self) -> str:
        return f"NOT {self.child.describe()}"
