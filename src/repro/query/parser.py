"""Parser for the textual query language of the search box (Figure 1).

Grammar (case-insensitive keywords)::

    query   := or_expr
    or_expr := and_expr ( OR and_expr )*
    and_expr:= unary ( [AND] unary )*          # adjacency means AND
    unary   := NOT unary | '(' or_expr ')' | leaf
    leaf    := attribute ':' value             # exact match
             | attribute '~' value             # substring match
             | value                           # bare term = title substring

    value   := quoted string | bare word

Examples::

    title:"Toy Story"
    genre:Thriller AND director:"Steven Spielberg"
    actor:"Tom Hanks" OR director:"Woody Allen"
    "Lord of the Rings"            (bare term → title substring search)

The parser produces an :class:`~repro.query.predicates.ItemPredicate` tree and
raises :class:`~repro.errors.QuerySyntaxError` with the offending position on
malformed input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from ..errors import QuerySyntaxError
from .predicates import (
    AndPredicate,
    AttributePredicate,
    ItemPredicate,
    NotPredicate,
    OrPredicate,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<quoted>"[^"]*")
  | (?P<word>[^\s():~"]+)
  | (?P<colon>:)
  | (?P<tilde>~)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"AND", "OR", "NOT"}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error reporting)."""

    kind: str
    text: str
    position: int


def tokenize(query: str) -> List[Token]:
    """Split a query string into tokens, raising on unrecognised characters."""
    tokens: List[Token] = []
    position = 0
    while position < len(query):
        match = _TOKEN_RE.match(query, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {query[position]!r}", position=position
            )
        kind = match.lastgroup or "word"
        text = match.group()
        if kind != "ws":
            if kind == "quoted":
                text = text[1:-1]
            tokens.append(Token(kind, text, position))
        position = match.end()
    return tokens


class QueryParser:
    """Recursive-descent parser producing an :class:`ItemPredicate` tree."""

    def __init__(self, query: str) -> None:
        self.query = query
        self.tokens = tokenize(query)
        self.index = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self) -> Optional[Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query", position=len(self.query))
        self.index += 1
        return token

    def _match_keyword(self, keyword: str) -> bool:
        token = self._peek()
        if token and token.kind == "word" and token.text.upper() == keyword:
            self.index += 1
            return True
        return False

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> ItemPredicate:
        """Parse the full query and return the predicate tree."""
        if not self.tokens:
            raise QuerySyntaxError("empty query", position=0)
        predicate = self._or_expr()
        trailing = self._peek()
        if trailing is not None:
            raise QuerySyntaxError(
                f"unexpected token {trailing.text!r}", position=trailing.position
            )
        return predicate

    def _or_expr(self) -> ItemPredicate:
        children = [self._and_expr()]
        while self._match_keyword("OR"):
            children.append(self._and_expr())
        if len(children) == 1:
            return children[0]
        return OrPredicate(tuple(children))

    def _and_expr(self) -> ItemPredicate:
        children = [self._unary()]
        while True:
            if self._match_keyword("AND"):
                children.append(self._unary())
                continue
            token = self._peek()
            if token is None or token.kind == "rparen":
                break
            if token.kind == "word" and token.text.upper() == "OR":
                break
            children.append(self._unary())
        if len(children) == 1:
            return children[0]
        return AndPredicate(tuple(children))

    def _unary(self) -> ItemPredicate:
        if self._match_keyword("NOT"):
            return NotPredicate(self._unary())
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query", position=len(self.query))
        if token.kind == "lparen":
            self._advance()
            inner = self._or_expr()
            closing = self._peek()
            if closing is None or closing.kind != "rparen":
                raise QuerySyntaxError(
                    "missing closing parenthesis", position=token.position
                )
            self._advance()
            return inner
        return self._leaf()

    def _leaf(self) -> ItemPredicate:
        token = self._advance()
        if token.kind not in ("word", "quoted"):
            raise QuerySyntaxError(
                f"expected a search term, got {token.text!r}", position=token.position
            )
        operator = self._peek()
        if (
            token.kind == "word"
            and operator is not None
            and operator.kind in ("colon", "tilde")
        ):
            self._advance()
            value_token = self._peek()
            if value_token is None or value_token.kind not in ("word", "quoted"):
                raise QuerySyntaxError(
                    f"attribute {token.text!r} is missing a value",
                    position=operator.position,
                )
            self._advance()
            exact = operator.kind == "colon"
            return AttributePredicate(
                attribute=token.text.lower(), value=value_token.text, exact=exact
            )
        # Bare term: substring match on the title.
        return AttributePredicate(attribute="title", value=token.text, exact=False)


def parse_query(query: str) -> ItemPredicate:
    """Parse a query string into a predicate tree."""
    return QueryParser(query).parse()
