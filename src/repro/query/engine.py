"""Query engine: evaluate an item query against the catalogue.

The engine turns a query string (or predicate tree) plus the optional time
interval of Figure 1 into the item-id set that the Rating Mining module then
collects rating tuples for (§2.3).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import List, Optional, Sequence, Tuple, Union

from ..data.model import Item, RatingDataset
from ..errors import QueryError
from .parser import parse_query
from .predicates import ItemPredicate


@dataclass(frozen=True)
class TimeInterval:
    """Closed timestamp interval restricting the mining (Figure 1 time slider).

    Attributes:
        start: inclusive start timestamp (seconds since the epoch).
        end: inclusive end timestamp.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise QueryError("time interval end precedes start")

    @classmethod
    def for_years(cls, start_year: int, end_year: int) -> "TimeInterval":
        """Interval spanning whole calendar years (UTC)."""
        start = int(datetime(start_year, 1, 1, tzinfo=timezone.utc).timestamp())
        end = int(
            datetime(end_year, 12, 31, 23, 59, 59, tzinfo=timezone.utc).timestamp()
        )
        return cls(start, end)

    @classmethod
    def for_year(cls, year: int) -> "TimeInterval":
        return cls.for_years(year, year)

    def as_tuple(self) -> Tuple[int, int]:
        return (self.start, self.end)

    def contains(self, timestamp: int) -> bool:
        return self.start <= timestamp <= self.end


@dataclass(frozen=True)
class ItemQuery:
    """A fully specified front-end query: predicate + optional time interval."""

    predicate: ItemPredicate
    time_interval: Optional[TimeInterval] = None
    raw: str = ""

    def describe(self) -> str:
        """Canonical description used for reports and cache keys."""
        text = self.raw or self.predicate.describe()
        if self.time_interval is not None:
            text += f" @[{self.time_interval.start},{self.time_interval.end}]"
        return text


class QueryEngine:
    """Evaluates item queries against one dataset's catalogue."""

    def __init__(self, dataset: RatingDataset) -> None:
        self.dataset = dataset
        self._title_index: Optional[Tuple[List[str], List[str]]] = None

    # -- parsing ------------------------------------------------------------------

    def compile(
        self,
        query: Union[str, ItemPredicate, ItemQuery],
        time_interval: Optional[TimeInterval] = None,
    ) -> ItemQuery:
        """Normalise any accepted query form into an :class:`ItemQuery`."""
        if isinstance(query, ItemQuery):
            if time_interval is not None and query.time_interval is None:
                return ItemQuery(query.predicate, time_interval, query.raw)
            return query
        if isinstance(query, ItemPredicate):
            return ItemQuery(query, time_interval, query.describe())
        if isinstance(query, str):
            predicate = parse_query(query)
            return ItemQuery(predicate, time_interval, query)
        raise QueryError(f"unsupported query object: {type(query).__name__}")

    # -- evaluation ---------------------------------------------------------------

    def matching_items(self, query: Union[str, ItemPredicate, ItemQuery]) -> List[Item]:
        """All catalogue items matching the query predicate."""
        compiled = self.compile(query)
        return [item for item in self.dataset.items() if compiled.predicate.matches(item)]

    def matching_item_ids(
        self, query: Union[str, ItemPredicate, ItemQuery]
    ) -> List[int]:
        """Ids of matching items, sorted for deterministic downstream behaviour."""
        return sorted(item.item_id for item in self.matching_items(query))

    def _titles_by_lowercase(self) -> Tuple[List[str], List[str]]:
        """Distinct titles with their lowered forms, sorted by the latter.

        Built once per engine (the catalogue is immutable), so every
        keystroke's completion is a binary search over the lowered index
        instead of a scan of the whole catalogue.
        """
        if self._title_index is None:
            pairs = sorted({(item.title.lower(), item.title) for item in self.dataset.items()})
            lowered = [low for low, _ in pairs]
            originals = [title for _, title in pairs]
            self._title_index = (lowered, originals)
        return self._title_index

    def suggest_titles(self, prefix: str, limit: int = 10) -> List[str]:
        """Title auto-completion for the search box (prefix, case-insensitive)."""
        wanted = prefix.strip().lower()
        if not wanted:
            return []
        lowered, originals = self._titles_by_lowercase()
        index = bisect_left(lowered, wanted)
        matches = set()
        while index < len(lowered) and lowered[index].startswith(wanted):
            matches.add(originals[index])
            index += 1
        return sorted(matches)[:limit]

    def distinct_attribute_values(self, attribute: str, limit: int = 0) -> List[str]:
        """Distinct values of an item attribute (UI pick lists)."""
        values: set = set()
        for item in self.dataset.items():
            values.update(item.attribute_values(attribute))
        ordered = sorted(values)
        return ordered[:limit] if limit else ordered
