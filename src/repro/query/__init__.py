"""Item-query front-end: the search box of Figure 1.

"A user can enter a conjunctive or disjunctive query by entering one or more
attribute value pairs.  Possible attributes include movie title, actor,
director and genre.  Furthermore, the user can restrict the mining over a
specific time interval." (§3.1)

The package provides a small query language over item attributes::

    title:"Toy Story"
    genre:Thriller AND director:"Steven Spielberg"
    actor:"Tom Hanks" OR director:"Woody Allen"

plus explicit predicate objects for programmatic construction, and the engine
that evaluates a query against a dataset's item catalogue.
"""

from .predicates import (
    AndPredicate,
    AttributePredicate,
    ItemPredicate,
    NotPredicate,
    OrPredicate,
    TitlePredicate,
)
from .parser import QueryParser, parse_query
from .engine import ItemQuery, QueryEngine, TimeInterval

__all__ = [
    "AndPredicate",
    "AttributePredicate",
    "ItemPredicate",
    "NotPredicate",
    "OrPredicate",
    "TitlePredicate",
    "QueryParser",
    "parse_query",
    "ItemQuery",
    "QueryEngine",
    "TimeInterval",
]
