"""Groups: reviewer sub-populations describable by attribute/value pairs.

§2.1 defines a group as "the set of rating tuples describable by a set of
attribute value pairs belonging to reviewers" — a cuboid of the data cube over
reviewer attributes.  :class:`GroupDescriptor` is the describable part (the
conjunction of pairs, e.g. ``{⟨state, CA⟩, ⟨gender, M⟩}``);
:class:`Group` binds a descriptor to the concrete rating tuples it selects
inside one :class:`~repro.data.storage.RatingSlice` and caches the statistics
the objectives and the UI need (size, mean, within-group error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..config import GEO_ATTRIBUTE
from ..errors import MiningError
from ..geo.states import state_by_code
from ..data.storage import RatingSlice
from .bitset import pack_positions

#: Phrase templates used to build human-readable group labels.
_GENDER_WORDS = {"M": "male", "F": "female"}
_AGE_PHRASES = {
    "Under 18": "under 18",
    "18-24": "aged 18-24",
    "25-34": "aged 25-34",
    "35-44": "aged 35-44",
    "45-49": "aged 45-49",
    "50-55": "aged 50-55",
    "56+": "aged 56 or older",
}


@dataclass(frozen=True, order=True)
class GroupDescriptor:
    """An ordered, hashable conjunction of reviewer attribute/value pairs."""

    pairs: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        normalized = tuple(sorted(self.pairs))
        attributes = [name for name, _ in normalized]
        if len(set(attributes)) != len(attributes):
            raise MiningError(
                f"group descriptor repeats an attribute: {self.pairs!r}"
            )
        object.__setattr__(self, "pairs", normalized)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_dict(cls, pairs: Mapping[str, str]) -> "GroupDescriptor":
        """Build a descriptor from a mapping of attribute → value."""
        return cls(tuple(pairs.items()))

    @classmethod
    def empty(cls) -> "GroupDescriptor":
        """The all-ratings group (the apex cuboid of the data cube)."""
        return cls(())

    # -- structure --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pairs)

    def as_dict(self) -> Dict[str, str]:
        return dict(self.pairs)

    def attributes(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.pairs)

    def value_of(self, attribute: str) -> Optional[str]:
        """Value the descriptor assigns to ``attribute``, None when absent."""
        for name, value in self.pairs:
            if name == attribute:
                return value
        return None

    def has_attribute(self, attribute: str) -> bool:
        return self.value_of(attribute) is not None

    def with_pair(self, attribute: str, value: str) -> "GroupDescriptor":
        """Return a specialisation of this descriptor with one more pair."""
        if self.has_attribute(attribute):
            raise MiningError(f"descriptor already constrains {attribute!r}")
        return GroupDescriptor(self.pairs + ((attribute, value),))

    def without_attribute(self, attribute: str) -> "GroupDescriptor":
        """Return a generalisation of this descriptor dropping one attribute."""
        return GroupDescriptor(
            tuple(pair for pair in self.pairs if pair[0] != attribute)
        )

    def generalizes(self, other: "GroupDescriptor") -> bool:
        """True when every pair of this descriptor also appears in ``other``."""
        return set(self.pairs) <= set(other.pairs)

    def specializes(self, other: "GroupDescriptor") -> bool:
        """True when this descriptor contains every pair of ``other``."""
        return other.generalizes(self)

    def matches(self, attributes: Mapping[str, str]) -> bool:
        """True when a reviewer attribute mapping satisfies every pair."""
        return all(attributes.get(name) == value for name, value in self.pairs)

    # -- geo --------------------------------------------------------------------

    @property
    def state(self) -> Optional[str]:
        """USPS state code of the geo condition, if the descriptor has one."""
        return self.value_of(GEO_ATTRIBUTE)

    @property
    def city(self) -> Optional[str]:
        return self.value_of("city")

    def has_geo_anchor(self) -> bool:
        """True when the group can be rendered on the state-level map (§3.1)."""
        return self.state is not None

    # -- presentation -------------------------------------------------------------

    def label(self) -> str:
        """Human-readable label, e.g. ``"male reviewers from California"``.

        Mirrors the labels of Figure 2 ("Male reviewers from California",
        "female teen student reviewers from New York").
        """
        values = self.as_dict()
        words: list[str] = []
        gender = values.get("gender")
        if gender:
            words.append(_GENDER_WORDS.get(gender, gender.lower()))
        occupation = values.get("occupation")
        if occupation:
            words.append(occupation)
        words.append("reviewers")
        age_group = values.get("age_group")
        if age_group:
            words.append(_AGE_PHRASES.get(age_group, age_group))
        place: list[str] = []
        if values.get("city"):
            place.append(values["city"])
        if values.get("state"):
            try:
                place.append(state_by_code(values["state"]).name)
            except Exception:  # pragma: no cover - unknown code kept verbatim
                place.append(values["state"])
        if place:
            words.append("from " + ", ".join(place))
        if not self.pairs:
            return "all reviewers"
        return " ".join(words)

    def short_label(self) -> str:
        """Compact ``attr=value`` form used in logs and benchmarks."""
        if not self.pairs:
            return "<all>"
        return ", ".join(f"{name}={value}" for name, value in self.pairs)


@dataclass(frozen=True)
class Group:
    """A descriptor bound to the rating tuples it selects inside a slice.

    Attributes:
        descriptor: the describable conjunction of attribute/value pairs.
        positions: indices into the slice of the rating tuples in the group.
        size: number of rating tuples.
        mean: average rating of the group (used to shade the map).
        error: within-group error Σ (s − mean)², the SM building block.
    """

    descriptor: GroupDescriptor
    positions: np.ndarray = field(repr=False, compare=False)
    size: int
    mean: float
    error: float

    @classmethod
    def from_mask(
        cls, descriptor: GroupDescriptor, rating_slice: RatingSlice, mask: np.ndarray
    ) -> "Group":
        """Materialise a group from a boolean mask over a slice."""
        positions = np.flatnonzero(mask)
        return cls.from_positions(descriptor, rating_slice, positions)

    @classmethod
    def from_positions(
        cls,
        descriptor: GroupDescriptor,
        rating_slice: RatingSlice,
        positions: np.ndarray,
    ) -> "Group":
        """Materialise a group from explicit tuple positions."""
        scores = rating_slice.scores[positions]
        size = int(positions.shape[0])
        if size == 0:
            mean, error = 0.0, 0.0
        else:
            # np.add.reduce is what ndarray.mean()/.sum() call underneath;
            # invoking it directly skips their wrapper layers (this runs once
            # per enumerated group) while producing bit-identical floats.
            mean = float(np.add.reduce(scores) / size)
            deltas = scores - mean
            error = float(np.add.reduce(deltas * deltas))
        return cls(
            descriptor=descriptor,
            positions=positions,
            size=size,
            mean=mean,
            error=error,
        )

    def __hash__(self) -> int:
        return hash(self.descriptor)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Group):
            return NotImplemented
        return self.descriptor == other.descriptor

    def packed_bits(self, total: int) -> np.ndarray:
        """Membership of this group as a packed bitset over ``total`` slice tuples.

        Packed once and cached on the instance, so the two mining tasks (and
        every solver restart) share a single materialisation; coverage of any
        selection is then a bitwise OR plus popcount over these rows.
        """
        cached = getattr(self, "_packed_bits", None)
        if cached is None or getattr(self, "_packed_total", None) != total:
            cached = pack_positions(self.positions, total)
            object.__setattr__(self, "_packed_bits", cached)
            object.__setattr__(self, "_packed_total", total)
        return cached

    @property
    def variance(self) -> float:
        """Per-tuple variance of the group's ratings."""
        return self.error / self.size if self.size else 0.0

    def coverage_fraction(self, total: int) -> float:
        """Fraction of the input rating tuples this single group covers."""
        return self.size / total if total else 0.0

    def scores(self, rating_slice: RatingSlice) -> np.ndarray:
        """Raw scores of the group's rating tuples."""
        return rating_slice.scores[self.positions]

    def label(self) -> str:
        return self.descriptor.label()

    def describe(self, total: int = 0) -> Dict[str, object]:
        """Summary dict used by explanation objects and the JSON API."""
        info: Dict[str, object] = {
            "label": self.label(),
            "pairs": self.descriptor.as_dict(),
            "size": self.size,
            "average_rating": round(self.mean, 4),
            "within_group_error": round(self.error, 4),
            "variance": round(self.variance, 4),
        }
        if total:
            info["coverage"] = round(self.coverage_fraction(total), 4)
        if self.descriptor.state:
            info["state"] = self.descriptor.state
        if self.descriptor.city:
            info["city"] = self.descriptor.city
        return info
