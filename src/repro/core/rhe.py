"""Randomized Hill Exploration (RHE): the solver MapRat uses (§2.2, §2.3).

"Each of the sub-problems is modeled as an optimization problem ... the
optimization problems are solved using Randomized Hill Exploration (RHE)
algorithm."  The problems are NP-hard, so RHE trades optimality for speed:

1. **Randomized start** — sample ``k`` distinct candidate groups; a greedy
   repair pass swaps low-coverage picks for high-coverage ones until the
   coverage constraint is met (or no repair helps).
2. **Hill exploration** — repeatedly try replacing one selected group with one
   unselected candidate; accept the swap when it improves the *penalised*
   objective (objective minus a large constraint-violation penalty).  The
   neighbourhood is sampled randomly, first-improvement style.
3. **Restarts** — repeat from a fresh random start and keep the best feasible
   selection found across restarts.

The inner loop is **delta-evaluated** through :class:`SelectionState`: the
state caches each candidate's scalar statistics, packed membership bitsets and
the selection's leave-one-out bitset unions, so one swap trial costs a single
bitwise OR + popcount over ``ceil(n/8)`` words plus O(k²) scalar work —
instead of re-unioning all position arrays and rebuilding every constraint
from the group lists (O(n·k) per trial).  The delta path replays the naive
arithmetic exactly (see :mod:`repro.core.measures` and
:mod:`repro.core.constraints`), so for a fixed seed the solver returns
bit-identical selections and objectives either way; ``use_fast_eval=False``
forces the naive path, which the equivalence property tests and the kernel
benchmark compare against.

The solver is deterministic for a fixed seed and exposes per-run statistics
(iterations, restarts, improvement trace) used by the ablation benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InfeasibleProblemError
from .bitset import leave_one_out_masks, to_int_mask
from .constraints import (
    DescriptionLengthConstraint,
    GeoAnchorConstraint,
    MaxGroupsConstraint,
    MinCoverageConstraint,
    MinSupportConstraint,
    SelectionStats,
)
from .groups import Group
from .measures import coverage, coverage_from_count
from .problems import (
    PENALTY_WEIGHT,
    DiversityProblem,
    MiningProblem,
    SimilarityProblem,
)


class SelectionState:
    """Incremental evaluation state for swap-based selection solvers.

    Caches, per candidate group: size, error, mean, descriptor and the packed
    membership bitset.  For the current selection it maintains the
    leave-one-out OR bitsets, so evaluating "replace the group at ``position``
    with ``candidate``" needs one OR + popcount and O(k) scalar gathers.

    Every float produced here is bit-identical to
    ``problem.penalized_objective`` on the equivalent group list: coverage
    counts are exact set cardinalities, and the scalar objective/penalty twins
    replay the naive summation order.
    """

    def __init__(self, problem: MiningProblem) -> None:
        candidates = problem.candidates
        self.problem = problem
        self.total = problem.total_ratings
        self.sizes = [int(g.size) for g in candidates]
        self.errors = [float(g.error) for g in candidates]
        self.means = [float(g.mean) for g in candidates]
        self.descriptors = [g.descriptor for g in candidates]
        self.unique_descriptors = len(set(self.descriptors)) == len(self.descriptors)
        self.masks = [to_int_mask(g.packed_bits(self.total)) for g in candidates]
        self._by_size: Optional[List[int]] = None
        self._sel: List[int] = []
        self._loo: List[int] = []
        self.value = float("-inf")
        self._compiled = self._compile(problem)

    def key(self, index: int):
        """Identity used for 'already selected' checks.

        The seed semantics compare *descriptors*; when every candidate has a
        distinct descriptor (always true for enumerated cubes) comparing the
        candidate indices is equivalent and avoids hashing descriptor tuples.
        """
        return index if self.unique_descriptors else self.descriptors[index]

    def by_size(self) -> List[int]:
        """Candidate indices ordered largest-first (stable), cached per solve."""
        if self._by_size is None:
            sizes = self.sizes
            self._by_size = sorted(range(len(sizes)), key=lambda i: -sizes[i])
        return self._by_size

    @classmethod
    def for_problem(cls, problem: MiningProblem) -> Optional["SelectionState"]:
        """Build a state when the problem supports exact delta evaluation."""
        if not getattr(problem, "supports_fast_objective", False):
            return None
        if not problem.constraints.supports_fast_eval():
            return None
        return cls(problem)

    # -- full (non-incremental) evaluation ----------------------------------------

    def covered_count(self, indices: Sequence[int]) -> int:
        """Distinct covered positions of an arbitrary candidate-index selection."""
        union = 0
        for index in indices:
            union |= self.masks[index]
        return union.bit_count()

    def coverage(self, indices: Sequence[int]) -> float:
        """Mirror of :func:`repro.core.measures.coverage` on candidate indices."""
        return coverage_from_count(self.covered_count(indices), self.total)

    def evaluate(self, indices: Sequence[int]) -> float:
        """Penalised objective of an arbitrary selection (no cached state)."""
        return self._penalized(list(indices), self.covered_count(indices))

    # -- incremental protocol ------------------------------------------------------

    def reset(self, indices: Sequence[int]) -> None:
        """Adopt a selection: cache its leave-one-out bitsets and value."""
        self._sel = list(indices)
        self._loo = leave_one_out_masks([self.masks[i] for i in self._sel])
        self.value = self._penalized(self._sel, self.covered_count(self._sel))

    def trial(self, position: int, candidate: int) -> float:
        """Penalised objective after swapping ``candidate`` into ``position``.

        O(words + k): the covered count of the hypothetical selection is
        ``loo[position] | masks[candidate]`` — no position arrays are touched.
        """
        covered = (self._loo[position] | self.masks[candidate]).bit_count()
        indices = list(self._sel)
        indices[position] = candidate
        return self._penalized(indices, covered)

    def commit(self, position: int, candidate: int, value: float) -> None:
        """Apply an accepted swap and refresh the leave-one-out cache."""
        self._sel[position] = candidate
        self._loo = leave_one_out_masks([self.masks[i] for i in self._sel])
        self.value = value

    # -- internals ----------------------------------------------------------------

    def _penalized(self, indices: List[int], covered: int) -> float:
        if not indices:
            return float("-inf")
        if self._compiled is not None:
            return self._compiled(indices, covered)
        stats = SelectionStats(
            covered=covered,
            total=self.total,
            sizes=tuple([self.sizes[i] for i in indices]),
            descriptors=tuple([self.descriptors[i] for i in indices]),
            errors=tuple([self.errors[i] for i in indices]),
            means=tuple([self.means[i] for i in indices]),
        )
        penalty = self.problem.constraints.penalty_fast(stats)
        return self.problem.objective_from_stats(stats) - PENALTY_WEIGHT * penalty

    def _compile(self, problem: MiningProblem):
        """Specialise the penalised objective for the stock problem shape.

        When the constraint set consists exactly of the built-in constraint
        classes (exact types, any order/multiplicity) and the problem is one
        of the two paper tasks, return a closure over precomputed
        per-candidate scalars that replays the naive arithmetic exactly:
        integer partial sums (description excess, support shortfalls, geo
        misses) are order-free, float folds keep selection order.  Returns
        ``None`` otherwise — the generic :class:`SelectionStats` path then
        handles custom subclasses through their own ``penalty_fast``.
        """
        total = self.total
        sizes = self.sizes
        errors = self.errors
        means = self.means
        descriptors = self.descriptors

        penalty_fns = []
        for constraint in problem.constraints.constraints:
            ctype = type(constraint)
            if ctype is MaxGroupsConstraint:
                max_groups = constraint.max_groups

                def fn(indices, k, covered, _mg=max_groups):
                    return max(0, k - _mg) / _mg

            elif ctype is MinCoverageConstraint:
                min_coverage = constraint.min_coverage

                def fn(indices, k, covered, _mc=min_coverage):
                    cov = covered / total if total > 0 else 0.0
                    return max(0.0, _mc - cov)

            elif ctype is DescriptionLengthConstraint:
                max_length = constraint.max_length
                excess = [max(0, len(d) - max_length) for d in descriptors]

                def fn(indices, k, covered, _excess=excess):
                    e = 0
                    for i in indices:
                        e += _excess[i]
                    return e / k

            elif ctype is MinSupportConstraint:
                min_support = constraint.min_support
                short = [1 if s < min_support else 0 for s in sizes]

                def fn(indices, k, covered, _short=short):
                    n = 0
                    for i in indices:
                        n += _short[i]
                    return n / k

            elif ctype is GeoAnchorConstraint:
                missing = [
                    0 if d.has_attribute(constraint.geo_attribute) else 1
                    for d in descriptors
                ]

                def fn(indices, k, covered, _missing=missing):
                    n = 0
                    for i in indices:
                        n += _missing[i]
                    return n / k

            else:
                return None
            penalty_fns.append(fn)

        problem_type = type(problem)
        if problem_type is SimilarityProblem:

            def objective(indices):
                covered_size = 0
                for i in indices:
                    covered_size += sizes[i]
                if covered_size == 0:
                    return -0.0
                error_sum = 0
                for i in indices:
                    error_sum = error_sum + errors[i]
                return -(float(error_sum) / covered_size)

        elif problem_type is DiversityProblem:
            diversity_penalty = problem.config.diversity_penalty

            def objective(indices):
                k = len(indices)
                if k < 2:
                    disagreement = 0.0
                else:  # pairs in combinations() order, left-fold like sum()
                    delta_sum = 0
                    pairs = 0
                    for a in range(k):
                        mean_a = means[indices[a]]
                        for b in range(a + 1, k):
                            delta_sum = delta_sum + abs(mean_a - means[indices[b]])
                            pairs += 1
                    disagreement = float(delta_sum / pairs)
                covered_size = 0
                for i in indices:
                    covered_size += sizes[i]
                if covered_size == 0:
                    normalized = 0.0
                else:
                    error_sum = 0
                    for i in indices:
                        error_sum = error_sum + errors[i]
                    normalized = float(error_sum) / covered_size
                return disagreement - diversity_penalty * normalized

        else:
            return None

        def penalized(indices, covered):
            k = len(indices)
            penalty = 0
            for fn in penalty_fns:
                penalty = penalty + fn(indices, k, covered)
            return objective(indices) - PENALTY_WEIGHT * float(penalty)

        return penalized


class _NaiveSelectionState:
    """Reference evaluator with the same protocol, no caching, no bitsets.

    Every query rebuilds the group list and calls the problem's Group-based
    evaluation — exactly what the seed implementation did per swap trial.
    Used when a custom problem/constraint lacks the fast path, and by the
    equivalence tests/benchmarks as ground truth.
    """

    def __init__(self, problem: MiningProblem) -> None:
        self.problem = problem
        self._candidates = problem.candidates
        self.sizes = [int(g.size) for g in self._candidates]
        self.descriptors = [g.descriptor for g in self._candidates]
        self.unique_descriptors = len(set(self.descriptors)) == len(self.descriptors)
        self._by_size: Optional[List[int]] = None
        self._sel: List[int] = []
        self.value = float("-inf")

    key = SelectionState.key
    by_size = SelectionState.by_size

    def _groups(self, indices: Sequence[int]) -> List[Group]:
        return [self._candidates[i] for i in indices]

    def coverage(self, indices: Sequence[int]) -> float:
        return coverage(self._groups(indices), self.problem.total_ratings)

    def evaluate(self, indices: Sequence[int]) -> float:
        return self.problem.penalized_objective(self._groups(indices))

    def reset(self, indices: Sequence[int]) -> None:
        self._sel = list(indices)
        self.value = self.evaluate(self._sel)

    def trial(self, position: int, candidate: int) -> float:
        indices = list(self._sel)
        indices[position] = candidate
        return self.evaluate(indices)

    def commit(self, position: int, candidate: int, value: float) -> None:
        self._sel[position] = candidate
        self.value = value


def make_selection_state(problem: MiningProblem, use_fast_eval: bool = True):
    """Pick the delta-evaluated state when the problem supports it, else naive."""
    state = SelectionState.for_problem(problem) if use_fast_eval else None
    return state if state is not None else _NaiveSelectionState(problem)


@dataclass
class SolveResult:
    """Outcome of one solver run.

    Attributes:
        groups: the selected groups, sorted by size (largest first).
        objective: plain (unpenalised) objective of the selection.
        feasible: whether the selection satisfies every constraint.
        iterations: total accepted + rejected swap evaluations (never exceeds
            ``restarts × max_iterations``).
        restarts: number of random restarts actually executed.
        elapsed_seconds: wall-clock solve time.
        solver: name of the solver that produced the result.
        trace: best penalised objective after each restart (ablation data).
    """

    groups: List[Group]
    objective: float
    feasible: bool
    iterations: int
    restarts: int
    elapsed_seconds: float
    solver: str = "rhe"
    trace: List[float] = field(default_factory=list)

    def labels(self) -> List[str]:
        return [g.label() for g in self.groups]

    def describe(self) -> dict:
        return {
            "solver": self.solver,
            "objective": round(self.objective, 6),
            "feasible": self.feasible,
            "iterations": self.iterations,
            "restarts": self.restarts,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "groups": [g.label() for g in self.groups],
        }


class RandomizedHillExploration:
    """Swap-based randomized hill climbing over candidate group selections."""

    name = "rhe"

    def __init__(
        self,
        restarts: int = 8,
        max_iterations: int = 200,
        neighborhood_sample: int = 64,
        seed: int = 2012,
        use_fast_eval: bool = True,
    ) -> None:
        self.restarts = max(1, restarts)
        self.max_iterations = max(1, max_iterations)
        self.neighborhood_sample = max(1, neighborhood_sample)
        self.seed = seed
        self.use_fast_eval = use_fast_eval

    @classmethod
    def from_config(cls, config) -> "RandomizedHillExploration":
        """Build a solver from a :class:`~repro.config.MiningConfig`."""
        return cls(
            restarts=config.rhe_restarts,
            max_iterations=config.rhe_max_iterations,
            seed=config.seed,
        )

    # -- public API -------------------------------------------------------------

    def solve(self, problem: MiningProblem) -> SolveResult:
        """Solve one mining problem, returning the best selection found."""
        start_time = time.perf_counter()
        candidates = problem.candidates
        k = min(problem.max_groups, len(candidates))
        if k == 0:
            raise InfeasibleProblemError("the problem has no candidate groups")
        rng = np.random.default_rng(self.seed)
        state = make_selection_state(problem, self.use_fast_eval)

        best_selection: Optional[List[int]] = None
        best_penalized = float("-inf")
        total_iterations = 0
        trace: List[float] = []

        for _ in range(self.restarts):
            selection = self._random_start(problem, state, k, rng)
            selection, iterations = self._hill_climb(problem, state, selection, rng)
            total_iterations += iterations
            penalized = state.evaluate(selection)
            trace.append(penalized)
            if penalized > best_penalized:
                best_penalized = penalized
                best_selection = selection

        assert best_selection is not None
        elapsed = time.perf_counter() - start_time
        chosen = [candidates[i] for i in best_selection]
        ordered = sorted(chosen, key=lambda g: (-g.size, g.descriptor))
        return SolveResult(
            groups=ordered,
            objective=problem.objective(ordered),
            feasible=problem.is_feasible(ordered),
            iterations=total_iterations,
            restarts=self.restarts,
            elapsed_seconds=elapsed,
            solver=self.name,
            trace=trace,
        )

    # -- internals ---------------------------------------------------------------

    def _random_start(
        self,
        problem: MiningProblem,
        state,
        k: int,
        rng: np.random.Generator,
    ) -> List[int]:
        """Sample k distinct candidates, then greedily repair coverage."""
        indices = rng.choice(len(problem.candidates), size=k, replace=False)
        selection = [int(i) for i in indices]
        return self._repair_coverage(problem, state, selection)

    def _repair_coverage(
        self,
        problem: MiningProblem,
        state,
        selection: List[int],
    ) -> List[int]:
        """Swap smallest groups for large candidates until coverage is met."""
        required = getattr(problem.config, "min_coverage", 0.0)
        if state.coverage(selection) >= required:
            return selection
        sizes = state.sizes
        repaired = list(selection)
        selected_keys = {state.key(i) for i in repaired}
        for big in state.by_size():
            if state.coverage(repaired) >= required:
                break
            if state.key(big) in selected_keys:
                continue
            smallest_index = min(
                range(len(repaired)), key=lambda i: sizes[repaired[i]]
            )
            selected_keys.discard(state.key(repaired[smallest_index]))
            repaired[smallest_index] = big
            selected_keys.add(state.key(big))
        return repaired

    def _hill_climb(
        self,
        problem: MiningProblem,
        state,
        selection: List[int],
        rng: np.random.Generator,
    ) -> Tuple[List[int], int]:
        """First-improvement swap hill climbing on the penalised objective.

        The swap budget is exact: precisely ``min(max_iterations, trials
        attempted)`` evaluations happen and are counted — the budget check
        runs *before* each evaluation, so the count never overshoots and no
        evaluated trial is ever discarded.
        """
        candidates = problem.candidates
        current = list(selection)
        state.reset(current)
        current_value = state.value
        iterations = 0
        improved = True
        while improved and iterations < self.max_iterations:
            improved = False
            selected_keys = {state.key(i) for i in current}
            sample_size = min(self.neighborhood_sample, len(candidates))
            neighbor_indices = rng.choice(len(candidates), size=sample_size, replace=False)
            for candidate in neighbor_indices.tolist():
                if state.key(candidate) in selected_keys:
                    continue
                for position in range(len(current)):
                    if iterations >= self.max_iterations:
                        return current, iterations
                    iterations += 1
                    trial_value = state.trial(position, candidate)
                    if trial_value > current_value + 1e-12:
                        state.commit(position, candidate, trial_value)
                        current[position] = candidate
                        current_value = trial_value
                        improved = True
                        break
                if improved:
                    break
        return current, iterations
