"""Randomized Hill Exploration (RHE): the solver MapRat uses (§2.2, §2.3).

"Each of the sub-problems is modeled as an optimization problem ... the
optimization problems are solved using Randomized Hill Exploration (RHE)
algorithm."  The problems are NP-hard, so RHE trades optimality for speed:

1. **Randomized start** — sample ``k`` distinct candidate groups; a greedy
   repair pass swaps low-coverage picks for high-coverage ones until the
   coverage constraint is met (or no repair helps).
2. **Hill exploration** — repeatedly try replacing one selected group with one
   unselected candidate; accept the swap when it improves the *penalised*
   objective (objective minus a large constraint-violation penalty).  The
   neighbourhood is sampled randomly, first-improvement style, which keeps
   each iteration O(sample × k).
3. **Restarts** — repeat from a fresh random start and keep the best feasible
   selection found across restarts.

The solver is deterministic for a fixed seed and exposes per-run statistics
(iterations, restarts, improvement trace) used by the ablation benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InfeasibleProblemError
from .groups import Group
from .measures import coverage
from .problems import MiningProblem


@dataclass
class SolveResult:
    """Outcome of one solver run.

    Attributes:
        groups: the selected groups, sorted by size (largest first).
        objective: plain (unpenalised) objective of the selection.
        feasible: whether the selection satisfies every constraint.
        iterations: total accepted + rejected swap evaluations.
        restarts: number of random restarts actually executed.
        elapsed_seconds: wall-clock solve time.
        solver: name of the solver that produced the result.
        trace: best penalised objective after each restart (ablation data).
    """

    groups: List[Group]
    objective: float
    feasible: bool
    iterations: int
    restarts: int
    elapsed_seconds: float
    solver: str = "rhe"
    trace: List[float] = field(default_factory=list)

    def labels(self) -> List[str]:
        return [g.label() for g in self.groups]

    def describe(self) -> dict:
        return {
            "solver": self.solver,
            "objective": round(self.objective, 6),
            "feasible": self.feasible,
            "iterations": self.iterations,
            "restarts": self.restarts,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "groups": [g.label() for g in self.groups],
        }


class RandomizedHillExploration:
    """Swap-based randomized hill climbing over candidate group selections."""

    name = "rhe"

    def __init__(
        self,
        restarts: int = 8,
        max_iterations: int = 200,
        neighborhood_sample: int = 64,
        seed: int = 2012,
    ) -> None:
        self.restarts = max(1, restarts)
        self.max_iterations = max(1, max_iterations)
        self.neighborhood_sample = max(1, neighborhood_sample)
        self.seed = seed

    @classmethod
    def from_config(cls, config) -> "RandomizedHillExploration":
        """Build a solver from a :class:`~repro.config.MiningConfig`."""
        return cls(
            restarts=config.rhe_restarts,
            max_iterations=config.rhe_max_iterations,
            seed=config.seed,
        )

    # -- public API -------------------------------------------------------------

    def solve(self, problem: MiningProblem) -> SolveResult:
        """Solve one mining problem, returning the best selection found."""
        start_time = time.perf_counter()
        candidates = problem.candidates
        k = min(problem.max_groups, len(candidates))
        if k == 0:
            raise InfeasibleProblemError("the problem has no candidate groups")
        rng = np.random.default_rng(self.seed)

        best_selection: Optional[List[Group]] = None
        best_penalized = float("-inf")
        total_iterations = 0
        trace: List[float] = []

        for _ in range(self.restarts):
            selection = self._random_start(problem, candidates, k, rng)
            selection, iterations = self._hill_climb(problem, candidates, selection, rng)
            total_iterations += iterations
            penalized = problem.penalized_objective(selection)
            trace.append(penalized)
            if penalized > best_penalized:
                best_penalized = penalized
                best_selection = selection

        assert best_selection is not None
        elapsed = time.perf_counter() - start_time
        ordered = sorted(best_selection, key=lambda g: (-g.size, g.descriptor))
        return SolveResult(
            groups=ordered,
            objective=problem.objective(ordered),
            feasible=problem.is_feasible(ordered),
            iterations=total_iterations,
            restarts=self.restarts,
            elapsed_seconds=elapsed,
            solver=self.name,
            trace=trace,
        )

    # -- internals ---------------------------------------------------------------

    def _random_start(
        self,
        problem: MiningProblem,
        candidates: Sequence[Group],
        k: int,
        rng: np.random.Generator,
    ) -> List[Group]:
        """Sample k distinct candidates, then greedily repair coverage."""
        indices = rng.choice(len(candidates), size=k, replace=False)
        selection = [candidates[i] for i in indices]
        return self._repair_coverage(problem, candidates, selection, rng)

    def _repair_coverage(
        self,
        problem: MiningProblem,
        candidates: Sequence[Group],
        selection: List[Group],
        rng: np.random.Generator,
    ) -> List[Group]:
        """Swap smallest groups for large candidates until coverage is met."""
        total = problem.total_ratings
        required = getattr(problem.config, "min_coverage", 0.0)
        if coverage(selection, total) >= required:
            return selection
        by_size = sorted(candidates, key=lambda g: -g.size)
        repaired = list(selection)
        selected_keys = {g.descriptor for g in repaired}
        for big in by_size:
            if coverage(repaired, total) >= required:
                break
            if big.descriptor in selected_keys:
                continue
            smallest_index = min(range(len(repaired)), key=lambda i: repaired[i].size)
            selected_keys.discard(repaired[smallest_index].descriptor)
            repaired[smallest_index] = big
            selected_keys.add(big.descriptor)
        return repaired

    def _hill_climb(
        self,
        problem: MiningProblem,
        candidates: Sequence[Group],
        selection: List[Group],
        rng: np.random.Generator,
    ) -> Tuple[List[Group], int]:
        """First-improvement swap hill climbing on the penalised objective."""
        current = list(selection)
        current_value = problem.penalized_objective(current)
        iterations = 0
        improved = True
        while improved and iterations < self.max_iterations:
            improved = False
            selected_keys = {g.descriptor for g in current}
            sample_size = min(self.neighborhood_sample, len(candidates))
            neighbor_indices = rng.choice(len(candidates), size=sample_size, replace=False)
            for candidate_index in neighbor_indices:
                candidate = candidates[candidate_index]
                if candidate.descriptor in selected_keys:
                    continue
                for position in range(len(current)):
                    iterations += 1
                    if iterations > self.max_iterations:
                        return current, iterations
                    trial = list(current)
                    trial[position] = candidate
                    trial_value = problem.penalized_objective(trial)
                    if trial_value > current_value + 1e-12:
                        current = trial
                        current_value = trial_value
                        improved = True
                        break
                if improved:
                    break
        return current, iterations
