"""Packed-bitset primitives for coverage algebra.

Group membership inside one :class:`~repro.data.storage.RatingSlice` is a set
of tuple positions.  Coverage of a *selection* of groups is the cardinality of
the union of those sets — the hottest operation of the RHE inner loop, where
every swap trial needs the coverage of a slightly different selection.

Packing each membership set into a ``uint8`` bit array (``np.packbits``) turns
that union into a bitwise OR over ``ceil(n / 8)`` words and the cardinality
into a popcount, both fully vectorised.  The counts are exact integers, so a
bitset-derived coverage fraction is bit-identical to the one computed from
``np.unique`` over position arrays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "pack_positions",
    "popcount",
    "union_rows",
    "to_int_mask",
    "leave_one_out_masks",
]

try:  # numpy >= 2.0 has a hardware popcount ufunc
    _bitwise_count = np.bitwise_count
except AttributeError:  # pragma: no cover - exercised only on old numpy
    _POPCOUNT_TABLE = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def _bitwise_count(words: np.ndarray) -> np.ndarray:
        return _POPCOUNT_TABLE[words]


def pack_positions(positions: np.ndarray, total: int) -> np.ndarray:
    """Pack a sorted array of tuple positions into a uint8 bitset of ``total`` bits."""
    member = np.zeros(int(total), dtype=bool)
    if len(positions):
        member[positions] = True
    return np.packbits(member)


def popcount(bits: np.ndarray) -> int:
    """Number of set bits in a packed bitset (exact distinct-position count)."""
    if bits.size == 0:
        return 0
    return int(_bitwise_count(bits).sum())


def union_rows(matrix: np.ndarray, indices: Sequence[int]) -> np.ndarray:
    """Bitwise OR of the selected rows of a (groups × words) packed matrix."""
    if len(indices) == 0:
        return np.zeros(matrix.shape[1] if matrix.ndim == 2 else 0, dtype=np.uint8)
    union = matrix[indices[0]].copy()
    for index in indices[1:]:
        np.bitwise_or(union, matrix[index], out=union)
    return union


def to_int_mask(bits: np.ndarray) -> int:
    """A packed bitset as one Python arbitrary-precision integer.

    For the slice sizes the solver sees (thousands to a few million bits),
    big-int ``|`` and ``int.bit_count`` run in tight C loops with none of the
    per-call overhead of small numpy reductions — the solver's inner loop
    operates on these.  The bit *sets* are identical, so popcounts agree with
    :func:`popcount` exactly.
    """
    return int.from_bytes(bits.tobytes(), "little")


def leave_one_out_masks(masks: Sequence[int]) -> list:
    """For k int masks, the OR of all masks *except* mask p, for every p.

    Computed with prefix/suffix OR sweeps in O(k) big-int operations, so a
    swap trial at position p only needs ``loo[p] | candidate_mask``.
    """
    k = len(masks)
    loo = [0] * k
    prefix = 0
    for p in range(k):  # loo[p] starts as OR(masks[:p])
        loo[p] = prefix
        prefix |= masks[p]
    suffix = 0
    for p in range(k - 1, -1, -1):  # fold in OR(masks[p+1:])
        loo[p] |= suffix
        suffix |= masks[p]
    return loo
