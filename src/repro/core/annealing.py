"""Simulated-annealing solver: an optional alternative to RHE.

RHE's swap hill climbing can stall in a local optimum when the candidate space
is rugged (many near-duplicate groups).  :class:`SimulatedAnnealingSolver`
explores the same swap neighbourhood but accepts worsening moves with a
temperature-controlled probability, annealing toward pure hill climbing.  It
is *not* part of the paper's system — it is provided as an extension point and
as an extra comparison line for the solver-quality benchmark; the default
pipeline keeps RHE.

The solver shares the :class:`~repro.core.rhe.SolveResult` shape so it can be
swapped into :class:`~repro.core.miner.RatingMiner` or benchmarked next to the
baselines without adapters.
"""

from __future__ import annotations

import math
import time
from typing import List, Sequence

import numpy as np

from ..errors import InfeasibleProblemError
from .groups import Group
from .problems import MiningProblem
from .rhe import RandomizedHillExploration, SolveResult, make_selection_state


class SimulatedAnnealingSolver:
    """Swap-neighbourhood simulated annealing over candidate group selections.

    Attributes:
        initial_temperature: starting temperature; higher accepts more uphill
            (worsening) moves early on.
        cooling: multiplicative cooling factor applied after every step.
        steps: number of proposed swaps per restart.
        restarts: independent annealing runs; the best feasible result wins.
        seed: seed of the proposal/acceptance randomness.
    """

    name = "annealing"

    def __init__(
        self,
        initial_temperature: float = 1.0,
        cooling: float = 0.97,
        steps: int = 400,
        restarts: int = 2,
        seed: int = 2012,
    ) -> None:
        if not 0 < cooling < 1:
            raise ValueError("cooling must lie strictly between 0 and 1")
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.steps = max(1, steps)
        self.restarts = max(1, restarts)
        self.seed = seed

    # -- public API ---------------------------------------------------------------

    def solve(self, problem: MiningProblem) -> SolveResult:
        """Anneal over selections of at most ``k`` candidate groups."""
        started_at = time.perf_counter()
        candidates = problem.candidates
        k = min(problem.max_groups, len(candidates))
        if k == 0:
            raise InfeasibleProblemError("the problem has no candidate groups")
        rng = np.random.default_rng(self.seed)
        # Reuse RHE's feasibility-repairing random start so annealing begins
        # from the same kind of state the paper's solver does.
        starter = RandomizedHillExploration(restarts=1, max_iterations=1, seed=self.seed)
        # The naive state: annealing evaluates its own swap trials on group
        # lists, so building per-candidate bitsets just for the start's
        # coverage repair would be wasted work.
        state = make_selection_state(problem, use_fast_eval=False)

        best: List[Group] = []
        best_penalized = float("-inf")
        iterations = 0
        trace: List[float] = []

        for _ in range(self.restarts):
            start_indices = starter._random_start(problem, state, k, rng)
            current = [candidates[i] for i in start_indices]
            current_value = problem.penalized_objective(current)
            temperature = self.initial_temperature
            for _ in range(self.steps):
                iterations += 1
                position = int(rng.integers(0, len(current)))
                replacement = candidates[int(rng.integers(0, len(candidates)))]
                if any(replacement.descriptor == g.descriptor for g in current):
                    temperature *= self.cooling
                    continue
                trial = list(current)
                trial[position] = replacement
                trial_value = problem.penalized_objective(trial)
                delta = trial_value - current_value
                if delta >= 0 or rng.random() < math.exp(delta / max(temperature, 1e-9)):
                    current, current_value = trial, trial_value
                temperature *= self.cooling
            trace.append(current_value)
            if current_value > best_penalized:
                best_penalized = current_value
                best = current

        ordered = sorted(best, key=lambda g: (-g.size, g.descriptor))
        return SolveResult(
            groups=ordered,
            objective=problem.objective(ordered),
            feasible=problem.is_feasible(ordered),
            iterations=iterations,
            restarts=self.restarts,
            elapsed_seconds=time.perf_counter() - started_at,
            solver=self.name,
            trace=trace,
        )
