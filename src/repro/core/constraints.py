"""Constraints that make a selection of groups a *meaningful* explanation.

§2.2: "We include constraints that ensure that each of the returned groups are
meaningfully labeled and collectively cover a significant fraction of ratings.
Additionally, we limit the number of such chosen groups to be small enough,
not to overwhelm a user."  §3.1 adds the demo-specific constraint that "each
of the groups always specify the state as their geo condition in order to
allow rendering of the explanation in the map".

Each constraint is a small object with a :meth:`check` predicate and a
:meth:`violation` explanation; :class:`ConstraintSet` bundles them, exposes
the aggregate feasibility test used by the solvers and a *penalty* used to
steer infeasible intermediate solutions toward feasibility during hill
climbing.

For the solver's delta-evaluated inner loop every built-in constraint also
implements :meth:`penalty_fast` over a :class:`SelectionStats` snapshot
(covered-position count, per-group sizes and descriptors) instead of the
materialised group list.  Each fast twin replays the arithmetic of its
:meth:`penalty` exactly — same integer sums, same divisions — so penalised
objectives computed incrementally are bit-identical to a full rebuild.
Custom constraints without a ``penalty_fast`` simply force the solver back
onto the naive evaluation path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import GEO_ATTRIBUTE, MiningConfig
from ..errors import ConstraintError
from .groups import Group, GroupDescriptor
from .measures import coverage, coverage_from_count


class SelectionStats:
    """Scalar snapshot of a candidate selection for fast constraint checks.

    A plain slotted class (not a dataclass): one is built per swap trial in
    the solver's hottest loop, so construction cost matters.

    Attributes:
        covered: number of distinct rating-tuple positions covered by the
            selection (bitset popcount; equals ``covered_positions(...).shape[0]``).
        total: number of rating tuples of the mined slice.
        sizes: per-group tuple counts, in selection order.
        descriptors: per-group descriptors, in selection order.
        errors: per-group within-group errors, in selection order (objective
            inputs; unused by the constraints themselves).
        means: per-group average ratings, in selection order.
    """

    __slots__ = ("covered", "total", "sizes", "descriptors", "errors", "means", "count")

    def __init__(
        self,
        covered: int,
        total: int,
        sizes: Tuple[int, ...],
        descriptors: Tuple[GroupDescriptor, ...],
        errors: Tuple[float, ...] = (),
        means: Tuple[float, ...] = (),
    ) -> None:
        self.covered = covered
        self.total = total
        self.sizes = sizes
        self.descriptors = descriptors
        self.errors = errors
        self.means = means
        self.count = len(sizes)


class Constraint:
    """Interface of a single selection constraint."""

    name = "constraint"

    def check(self, groups: Sequence[Group], total: int) -> bool:
        """Return True when the selection satisfies the constraint."""
        raise NotImplementedError

    def violation(self, groups: Sequence[Group], total: int) -> Optional[str]:
        """Human-readable description of the violation, None when satisfied."""
        if self.check(groups, total):
            return None
        return f"{self.name} violated"

    def penalty(self, groups: Sequence[Group], total: int) -> float:
        """Non-negative magnitude of the violation (0 when satisfied).

        Solvers subtract a large multiple of the penalty from the objective so
        that hill climbing gravitates toward feasible selections even when the
        random start is infeasible.
        """
        return 0.0 if self.check(groups, total) else 1.0


@dataclass
class MaxGroupsConstraint(Constraint):
    """At most ``max_groups`` groups may be returned (don't overwhelm the user)."""

    max_groups: int
    name = "max_groups"

    def __post_init__(self) -> None:
        if self.max_groups < 1:
            raise ConstraintError("max_groups must be at least 1")

    def check(self, groups: Sequence[Group], total: int) -> bool:
        return 0 < len(groups) <= self.max_groups

    def violation(self, groups: Sequence[Group], total: int) -> Optional[str]:
        if self.check(groups, total):
            return None
        return (
            f"selection has {len(groups)} groups, allowed 1..{self.max_groups}"
        )

    def penalty(self, groups: Sequence[Group], total: int) -> float:
        if not groups:
            return 1.0
        return max(0, len(groups) - self.max_groups) / self.max_groups

    def penalty_fast(self, stats: SelectionStats) -> float:
        if stats.count == 0:
            return 1.0
        return max(0, stats.count - self.max_groups) / self.max_groups


@dataclass
class MinCoverageConstraint(Constraint):
    """The selected groups must jointly cover ≥ ``min_coverage`` of the ratings."""

    min_coverage: float
    name = "min_coverage"

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_coverage <= 1.0:
            raise ConstraintError("min_coverage must lie in [0, 1]")

    def check(self, groups: Sequence[Group], total: int) -> bool:
        return coverage(groups, total) >= self.min_coverage

    def violation(self, groups: Sequence[Group], total: int) -> Optional[str]:
        actual = coverage(groups, total)
        if actual >= self.min_coverage:
            return None
        return f"coverage {actual:.3f} below required {self.min_coverage:.3f}"

    def penalty(self, groups: Sequence[Group], total: int) -> float:
        return max(0.0, self.min_coverage - coverage(groups, total))

    def penalty_fast(self, stats: SelectionStats) -> float:
        return max(
            0.0, self.min_coverage - coverage_from_count(stats.covered, stats.total)
        )


@dataclass
class DescriptionLengthConstraint(Constraint):
    """Every group description must use at most ``max_length`` pairs."""

    max_length: int
    name = "description_length"

    def __post_init__(self) -> None:
        if self.max_length < 1:
            raise ConstraintError("max_length must be at least 1")

    def check(self, groups: Sequence[Group], total: int) -> bool:
        return all(len(g.descriptor) <= self.max_length for g in groups)

    def violation(self, groups: Sequence[Group], total: int) -> Optional[str]:
        long_labels = [
            g.descriptor.short_label()
            for g in groups
            if len(g.descriptor) > self.max_length
        ]
        if not long_labels:
            return None
        return f"descriptions longer than {self.max_length} pairs: {long_labels}"

    def penalty(self, groups: Sequence[Group], total: int) -> float:
        if not groups:
            return 0.0
        excess = sum(max(0, len(g.descriptor) - self.max_length) for g in groups)
        return excess / len(groups)

    def penalty_fast(self, stats: SelectionStats) -> float:
        if stats.count == 0:
            return 0.0
        excess = sum(max(0, len(d) - self.max_length) for d in stats.descriptors)
        return excess / stats.count


@dataclass
class MinSupportConstraint(Constraint):
    """Every selected group must contain at least ``min_support`` rating tuples."""

    min_support: int
    name = "min_support"

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise ConstraintError("min_support must be at least 1")

    def check(self, groups: Sequence[Group], total: int) -> bool:
        return all(g.size >= self.min_support for g in groups)

    def violation(self, groups: Sequence[Group], total: int) -> Optional[str]:
        small = [g.descriptor.short_label() for g in groups if g.size < self.min_support]
        if not small:
            return None
        return f"groups below support {self.min_support}: {small}"

    def penalty(self, groups: Sequence[Group], total: int) -> float:
        if not groups:
            return 0.0
        short = sum(1 for g in groups if g.size < self.min_support)
        return short / len(groups)

    def penalty_fast(self, stats: SelectionStats) -> float:
        if stats.count == 0:
            return 0.0
        short = sum(1 for size in stats.sizes if size < self.min_support)
        return short / stats.count


@dataclass
class GeoAnchorConstraint(Constraint):
    """Every selected group must carry a geo condition so it is map-renderable."""

    geo_attribute: str = GEO_ATTRIBUTE
    name = "geo_anchor"

    def check(self, groups: Sequence[Group], total: int) -> bool:
        return all(g.descriptor.has_attribute(self.geo_attribute) for g in groups)

    def violation(self, groups: Sequence[Group], total: int) -> Optional[str]:
        missing = [
            g.descriptor.short_label()
            for g in groups
            if not g.descriptor.has_attribute(self.geo_attribute)
        ]
        if not missing:
            return None
        return f"groups without a {self.geo_attribute} condition: {missing}"

    def penalty(self, groups: Sequence[Group], total: int) -> float:
        if not groups:
            return 0.0
        missing = sum(
            1 for g in groups if not g.descriptor.has_attribute(self.geo_attribute)
        )
        return missing / len(groups)

    def penalty_fast(self, stats: SelectionStats) -> float:
        if stats.count == 0:
            return 0.0
        missing = sum(
            1 for d in stats.descriptors if not d.has_attribute(self.geo_attribute)
        )
        return missing / stats.count


class ConstraintSet:
    """A bundle of constraints evaluated together by the solvers."""

    def __init__(self, constraints: Sequence[Constraint]) -> None:
        self.constraints: List[Constraint] = list(constraints)

    @classmethod
    def from_config(cls, config: MiningConfig) -> "ConstraintSet":
        """Build the paper's constraint set from a mining configuration."""
        constraints: List[Constraint] = [
            MaxGroupsConstraint(config.max_groups),
            MinCoverageConstraint(config.min_coverage),
            DescriptionLengthConstraint(config.max_description_length),
            MinSupportConstraint(config.min_group_support),
        ]
        if config.require_geo_anchor:
            constraints.append(GeoAnchorConstraint(config.geo_anchor_attribute))
        return cls(constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    def is_feasible(self, groups: Sequence[Group], total: int) -> bool:
        """True when the selection satisfies every constraint."""
        return all(c.check(groups, total) for c in self.constraints)

    def violations(self, groups: Sequence[Group], total: int) -> List[str]:
        """All violation messages of the selection (empty when feasible)."""
        messages = [c.violation(groups, total) for c in self.constraints]
        return [m for m in messages if m]

    def penalty(self, groups: Sequence[Group], total: int) -> float:
        """Aggregate violation magnitude used to penalise infeasible selections."""
        return float(sum(c.penalty(groups, total) for c in self.constraints))

    def supports_fast_eval(self) -> bool:
        """True when every constraint offers the delta-evaluation fast path."""
        return all(
            callable(getattr(c, "penalty_fast", None)) for c in self.constraints
        )

    def penalty_fast(self, stats: SelectionStats) -> float:
        """Aggregate penalty from scalar stats; bit-identical to :meth:`penalty`.

        Summation runs over the constraints in the same order as the naive
        path — a left fold starting from integer 0, exactly like ``sum()`` —
        so the accumulated float is exactly the same value.
        """
        total = 0
        for constraint in self.constraints:
            total = total + constraint.penalty_fast(stats)
        return float(total)
