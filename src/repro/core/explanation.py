"""Result objects: explanations, interpretations and the combined mining result.

§2.3 calls the set of groups produced by one sub-problem a "rating
interpretation object"; the set of interpretations built from the same input
ratings forms an *exploration*.  The classes here are those objects:

* :class:`GroupExplanation` — one selected group with everything the UI shows
  (label, attribute pairs, average rating, coverage, state for the map),
* :class:`Explanation` — one interpretation (one mining task) with its groups,
  objective value, coverage and solver diagnostics,
* :class:`MiningResult` — the pair of interpretations (SM + DM) for one query,
  which is what the visualization layer turns into the two tabs of Figure 2.

All objects are plain data with ``to_dict`` serialisers so the JSON API and
the HTML report share one representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import MiningConfig
from ..data.model import Item
from ..data.storage import RatingSlice
from .groups import Group
from .measures import coverage, pairwise_disagreement, within_group_error
from .rhe import SolveResult


def stable_payload(payload):
    """Strip wall-clock fields from a serialised result, recursively.

    Mining is deterministic for a fixed seed, but every result dict carries
    ``elapsed_seconds`` timings.  The parallel-equivalence tests and the
    benchmarks' bit-identity assertions compare payloads through this helper
    so the contract "same seed ⇒ same result" stays checkable bit-for-bit.
    """
    if isinstance(payload, dict):
        return {
            key: stable_payload(value)
            for key, value in payload.items()
            if key != "elapsed_seconds"
        }
    if isinstance(payload, list):
        return [stable_payload(value) for value in payload]
    return payload


@dataclass(frozen=True)
class GroupExplanation:
    """One selected reviewer group, ready for display.

    Attributes:
        label: human-readable group label ("male reviewers from California").
        pairs: the attribute/value pairs describing the group.
        size: number of rating tuples in the group.
        average_rating: the group's average rating (drives the map shading).
        coverage: fraction of the queried ratings this group covers.
        state: USPS code of the geo condition (None when not geo-anchored).
        city: city of the geo condition when drilled down.
        score_histogram: count of ratings per score value (Figure 3 panel).
    """

    label: str
    pairs: Mapping[str, str]
    size: int
    average_rating: float
    coverage: float
    state: Optional[str] = None
    city: Optional[str] = None
    score_histogram: Mapping[float, int] = field(default_factory=dict)

    @classmethod
    def from_group(
        cls, group: Group, rating_slice: RatingSlice, total: int
    ) -> "GroupExplanation":
        """Build the display object for one selected group."""
        sub_slice_scores = group.scores(rating_slice)
        histogram: Dict[float, int] = {}
        for score in sub_slice_scores.tolist():
            key = float(round(score))
            histogram[key] = histogram.get(key, 0) + 1
        return cls(
            label=group.label(),
            pairs=group.descriptor.as_dict(),
            size=group.size,
            average_rating=round(group.mean, 4),
            coverage=round(group.coverage_fraction(total), 4),
            state=group.descriptor.state,
            city=group.descriptor.city,
            score_histogram=histogram,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "pairs": dict(self.pairs),
            "size": self.size,
            "average_rating": self.average_rating,
            "coverage": self.coverage,
            "state": self.state,
            "city": self.city,
            "score_histogram": {str(k): v for k, v in self.score_histogram.items()},
        }


@dataclass(frozen=True)
class Explanation:
    """One rating interpretation: the output of one mining task (§2.3).

    Attributes:
        task: ``"similarity"`` or ``"diversity"``.
        groups: the selected groups as display objects.
        objective: the task objective value of the selection.
        coverage: joint coverage of the selection.
        feasible: whether the selection satisfies every constraint.
        solver: name of the solver that produced it.
        solver_iterations: swap evaluations spent by the solver.
        elapsed_seconds: solver wall-clock time.
        within_error: total within-group error of the selection.
        disagreement: mean pairwise disagreement of the selection.
    """

    task: str
    groups: Tuple[GroupExplanation, ...]
    objective: float
    coverage: float
    feasible: bool
    solver: str
    solver_iterations: int
    elapsed_seconds: float
    within_error: float
    disagreement: float

    @classmethod
    def from_solve_result(
        cls,
        task: str,
        result: SolveResult,
        rating_slice: RatingSlice,
    ) -> "Explanation":
        """Wrap a solver result over a slice into a display-ready explanation."""
        total = len(rating_slice)
        group_explanations = tuple(
            GroupExplanation.from_group(group, rating_slice, total)
            for group in result.groups
        )
        return cls(
            task=task,
            groups=group_explanations,
            objective=round(result.objective, 6),
            coverage=round(coverage(result.groups, total), 4),
            feasible=result.feasible,
            solver=result.solver,
            solver_iterations=result.iterations,
            elapsed_seconds=round(result.elapsed_seconds, 6),
            within_error=round(within_group_error(result.groups), 4),
            disagreement=round(pairwise_disagreement(result.groups), 4),
        )

    def labels(self) -> List[str]:
        return [g.label for g in self.groups]

    def group_for_state(self, state: str) -> Optional[GroupExplanation]:
        """First group anchored on the given state, if any."""
        for group in self.groups:
            if group.state == state:
                return group
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "task": self.task,
            "groups": [g.to_dict() for g in self.groups],
            "objective": self.objective,
            "coverage": self.coverage,
            "feasible": self.feasible,
            "solver": self.solver,
            "solver_iterations": self.solver_iterations,
            "elapsed_seconds": self.elapsed_seconds,
            "within_error": self.within_error,
            "disagreement": self.disagreement,
        }


@dataclass(frozen=True)
class QuerySummary:
    """What was asked: the items and rating tuples behind an explanation."""

    description: str
    item_ids: Tuple[int, ...]
    item_titles: Tuple[str, ...]
    num_ratings: int
    average_rating: float
    time_interval: Optional[Tuple[int, int]] = None

    @classmethod
    def build(
        cls,
        description: str,
        items: Sequence[Item],
        rating_slice: RatingSlice,
        time_interval: Optional[Tuple[int, int]] = None,
    ) -> "QuerySummary":
        return cls(
            description=description,
            item_ids=tuple(item.item_id for item in items),
            item_titles=tuple(item.title for item in items),
            num_ratings=len(rating_slice),
            average_rating=round(rating_slice.average(), 4),
            time_interval=time_interval,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "description": self.description,
            "item_ids": list(self.item_ids),
            "item_titles": list(self.item_titles),
            "num_ratings": self.num_ratings,
            "average_rating": self.average_rating,
            "time_interval": list(self.time_interval) if self.time_interval else None,
        }


@dataclass(frozen=True)
class MiningResult:
    """The full answer to one "Explain Ratings" click: SM + DM interpretations."""

    query: QuerySummary
    similarity: Explanation
    diversity: Explanation
    config: MiningConfig
    elapsed_seconds: float = 0.0

    def explanations(self) -> Tuple[Explanation, Explanation]:
        return (self.similarity, self.diversity)

    def explanation_for(self, task: str) -> Explanation:
        """Return the interpretation of the given task name."""
        if task == "similarity":
            return self.similarity
        if task == "diversity":
            return self.diversity
        raise KeyError(f"unknown mining task {task!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "query": self.query.to_dict(),
            "similarity": self.similarity.to_dict(),
            "diversity": self.diversity.to_dict(),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "config": {
                "max_groups": self.config.max_groups,
                "min_coverage": self.config.min_coverage,
                "max_description_length": self.config.max_description_length,
                "require_geo_anchor": self.config.require_geo_anchor,
            },
        }
