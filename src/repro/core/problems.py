"""The two optimisation problems of §2.2: Similarity Mining and Diversity Mining.

Both share the same shape — pick at most ``k`` candidate groups that satisfy
the constraint set and maximise a task-specific objective — and are NP-hard
(the MRI paper proves hardness; MapRat restates it as "the main technical
challenge").  :class:`MiningProblem` captures the shared structure so the RHE
solver and the baselines can be written once and parameterised by problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import MiningConfig
from ..data.storage import RatingSlice
from ..errors import InfeasibleProblemError, MiningError
from .constraints import ConstraintSet, SelectionStats
from .cube import enumerate_candidates
from .groups import Group
from .measures import (
    diversity_objective,
    diversity_objective_values,
    similarity_objective,
    similarity_objective_values,
)

#: Weight of the constraint penalty in the penalised objective.  It dwarfs the
#: objective's natural range (a few rating points) so feasibility always wins.
PENALTY_WEIGHT = 100.0


class MiningProblem:
    """One instance of a group-selection optimisation problem.

    Attributes:
        rating_slice: the rating tuples ``R_I`` of the queried item set.
        candidates: the candidate groups enumerated from the data cube.
        config: the mining configuration (k, coverage, solver knobs).
        constraints: the constraint set derived from the configuration.
    """

    #: short identifier used in results and cache keys ("similarity"/"diversity")
    task = "abstract"

    def __init__(
        self,
        rating_slice: RatingSlice,
        candidates: Sequence[Group],
        config: MiningConfig,
        constraints: Optional[ConstraintSet] = None,
    ) -> None:
        if rating_slice.is_empty():
            raise MiningError("cannot mine an empty rating slice")
        self.rating_slice = rating_slice
        self.candidates: List[Group] = list(candidates)
        self.config = config
        self.constraints = constraints or ConstraintSet.from_config(config)

    @classmethod
    def from_slice(
        cls, rating_slice: RatingSlice, config: MiningConfig
    ) -> "MiningProblem":
        """Enumerate candidates from the slice and build the problem."""
        candidates = enumerate_candidates(rating_slice, config)
        if not candidates:
            raise InfeasibleProblemError(
                "no candidate group satisfies the support and description limits"
            )
        return cls(rating_slice, candidates, config)

    # -- evaluation -----------------------------------------------------------

    @property
    def total_ratings(self) -> int:
        return len(self.rating_slice)

    @property
    def max_groups(self) -> int:
        return self.config.max_groups

    #: True when :meth:`objective_from_stats` replays :meth:`objective` exactly,
    #: enabling the solver's delta-evaluated inner loop.
    supports_fast_objective = False

    def objective(self, selection: Sequence[Group]) -> float:
        """Task-specific objective, higher is better.  Overridden by subclasses."""
        raise NotImplementedError

    def objective_from_stats(self, stats: SelectionStats) -> float:
        """Objective from a scalar selection snapshot (delta-evaluation path).

        Must be a bit-exact mirror of :meth:`objective`; subclasses that
        implement it set ``supports_fast_objective = True``.
        """
        raise NotImplementedError

    def is_feasible(self, selection: Sequence[Group]) -> bool:
        """True when the selection satisfies every constraint."""
        return self.constraints.is_feasible(selection, self.total_ratings)

    def violations(self, selection: Sequence[Group]) -> List[str]:
        return self.constraints.violations(selection, self.total_ratings)

    def penalized_objective(self, selection: Sequence[Group]) -> float:
        """Objective minus a large multiple of the constraint violation.

        The penalised form is what the hill climber optimises; on feasible
        selections it equals the plain objective.
        """
        if not selection:
            return float("-inf")
        penalty = self.constraints.penalty(selection, self.total_ratings)
        return self.objective(selection) - PENALTY_WEIGHT * penalty

    def describe(self) -> dict:
        """Summary of the problem instance for logs and benchmark output."""
        return {
            "task": self.task,
            "ratings": self.total_ratings,
            "candidates": len(self.candidates),
            "max_groups": self.config.max_groups,
            "min_coverage": self.config.min_coverage,
        }


class SimilarityProblem(MiningProblem):
    """Similarity Mining: groups whose members agree on the item's rating.

    "SM is most useful in identifying reviewer preferences.  Additionally, a
    user can choose the reviewer group she most identifies with and choose
    their aggregate rating." (§2.2)
    """

    task = "similarity"
    supports_fast_objective = True

    def objective(self, selection: Sequence[Group]) -> float:
        return similarity_objective(selection)

    def objective_from_stats(self, stats: SelectionStats) -> float:
        return similarity_objective_values(stats.errors, stats.sizes)


class DiversityProblem(MiningProblem):
    """Diversity Mining: groups that consistently disagree with one another.

    "DM is most useful in identifying reviewer response towards controversial
    items." (§2.2)
    """

    task = "diversity"
    supports_fast_objective = True

    def objective(self, selection: Sequence[Group]) -> float:
        return diversity_objective(selection, penalty=self.config.diversity_penalty)

    def objective_from_stats(self, stats: SelectionStats) -> float:
        return diversity_objective_values(
            stats.means, stats.errors, stats.sizes, penalty=self.config.diversity_penalty
        )
