"""RatingMiner: the "Rating Mining" architecture component of §2.3.

"This module accepts a set of items I from the front-end and collects all the
corresponding rating tuples R_I.  The set of groups that has at least one
rating tuple in R_I are then constructed.  The next step is to cast the
problem as an optimization task corresponding to each of the two sub-problems:
Similarity Mining and Diversity Mining.  For each of the two sub-problems, the
RHE algorithm is employed to retrieve the best set of reviewer groups that
provide meaningful rating interpretations."

:class:`RatingMiner` is exactly that pipeline, with the solver pluggable so the
benchmarks can swap in the baselines.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple

from ..config import MiningConfig
from ..data.model import Item, RatingDataset
from ..data.storage import RatingSlice, RatingStore
from ..errors import EmptyRatingSetError, MiningError
from .cube import enumerate_candidates
from .explanation import Explanation, MiningResult, QuerySummary
from .problems import DiversityProblem, MiningProblem, SimilarityProblem
from .rhe import RandomizedHillExploration, SolveResult


class RatingMiner:
    """End-to-end mining of meaningful explanations for an item selection."""

    def __init__(
        self,
        store: RatingStore,
        config: Optional[MiningConfig] = None,
        solver: Optional[RandomizedHillExploration] = None,
    ) -> None:
        self.store = store
        self.config = config or MiningConfig()
        self.solver = solver or RandomizedHillExploration.from_config(self.config)

    @classmethod
    def build_store(
        cls, dataset: RatingDataset, config: Optional[MiningConfig] = None
    ) -> RatingStore:
        """Build the indexed store :meth:`for_dataset` would mine over.

        Exposed separately so the recovery layer can rebuild a base store
        (when no snapshot exists yet) with the exact same grouping attributes
        a normal startup would use.
        """
        config = config or MiningConfig()
        grouping = tuple(
            dict.fromkeys(
                tuple(config.grouping_attributes) + ("state", "city", "zipcode")
            )
        )
        return RatingStore(dataset, grouping_attributes=grouping)

    @classmethod
    def for_dataset(
        cls, dataset: RatingDataset, config: Optional[MiningConfig] = None
    ) -> "RatingMiner":
        """Build a miner (and its indexed store) directly from a dataset."""
        config = config or MiningConfig()
        return cls(cls.build_store(dataset, config), config)

    # -- slicing ------------------------------------------------------------------

    def slice_for_items(
        self,
        item_ids: Iterable[int],
        time_interval: Optional[Tuple[int, int]] = None,
    ) -> RatingSlice:
        """Collect ``R_I`` for the item selection (optionally time-restricted)."""
        return self.store.slice_for_items(item_ids, time_interval=time_interval)

    # -- mining -------------------------------------------------------------------

    def mine_similarity(
        self,
        rating_slice: RatingSlice,
        config: Optional[MiningConfig] = None,
        candidates: Optional[List] = None,
    ) -> Explanation:
        """Run Similarity Mining on a prepared slice.

        ``candidates`` optionally injects a pre-enumerated candidate list
        (the sharded backend merges one from per-shard partial cubes);
        ``None`` enumerates from the slice as always.
        """
        return self._mine(
            SimilarityProblem, "similarity", rating_slice, config, candidates
        )

    def mine_diversity(
        self,
        rating_slice: RatingSlice,
        config: Optional[MiningConfig] = None,
        candidates: Optional[List] = None,
    ) -> Explanation:
        """Run Diversity Mining on a prepared slice.

        ``candidates`` optionally injects a pre-enumerated candidate list,
        exactly as in :meth:`mine_similarity`.
        """
        return self._mine(
            DiversityProblem, "diversity", rating_slice, config, candidates
        )

    def _mine(
        self,
        problem_class,
        task: str,
        rating_slice: RatingSlice,
        config: Optional[MiningConfig],
        candidates: Optional[List] = None,
    ) -> Explanation:
        config = config or self.config
        if rating_slice.is_empty():
            raise EmptyRatingSetError("the item selection matches no rating tuples")
        if candidates is None:
            candidates = enumerate_candidates(rating_slice, config)
        if not candidates:
            raise MiningError(
                "no candidate group meets the support/description constraints; "
                "lower min_group_support or relax the description limit"
            )
        problem: MiningProblem = problem_class(rating_slice, candidates, config)
        solver = (
            self.solver
            if config is self.config
            else RandomizedHillExploration.from_config(config)
        )
        result: SolveResult = solver.solve(problem)
        return Explanation.from_solve_result(task, result, rating_slice)

    # -- the one-call façade ---------------------------------------------------------

    def explain_items(
        self,
        item_ids: Sequence[int],
        description: str = "",
        time_interval: Optional[Tuple[int, int]] = None,
        config: Optional[MiningConfig] = None,
        pool=None,
    ) -> MiningResult:
        """Produce the SM + DM interpretations for an item selection.

        This is what the front-end's "Explain Ratings" button triggers: slice
        the ratings, run both mining tasks, and package the result for the
        visualization layer.

        Args:
            item_ids: the items selected by the query layer.
            description: human-readable query description for reports.
            time_interval: optional ``(start, end)`` timestamp restriction.
            config: per-call override of the mining configuration.
            pool: optional :class:`~repro.server.pool.MiningWorkerPool`,
                :class:`~repro.server.procpool.ProcessMiningPool` or
                :class:`~repro.server.shardpool.ShardedMiningPool`; when it
                is parallel, the two mining tasks run concurrently.  A
                sharded pool mines the selection by scatter-gather over its
                data shards and merges losslessly.  A process
                pool receives the two tasks as spec tuples — its workers
                re-slice the selection from the shared-memory snapshot of
                this store's epoch and mine there; the query summary is still
                assembled here, where the item catalogue lives.  Each task
                seeds its own generator from ``config.seed``, so the result
                is bit-identical to the serial path for a fixed seed.  Never
                pass a thread pool whose workers may already be executing
                this call (nested submission can exhaust the pool and
                deadlock); process-pool nesting is safe — worker processes
                never submit.
        """
        config = config or self.config
        started_at = time.perf_counter()
        rating_slice = self.slice_for_items(item_ids, time_interval=time_interval)
        items = [
            self.store.dataset.item(item_id)
            for item_id in item_ids
            if self.store.dataset.has_item(item_id)
        ]
        if pool is not None and getattr(pool, "kind", "thread") in (
            "process",
            "sharded",
            "fleet",
        ):
            similarity, diversity = pool.mine_pair(
                self.store.epoch, list(item_ids), time_interval, config
            )
        elif pool is not None and getattr(pool, "parallel", False):
            similarity_future = pool.submit(self.mine_similarity, rating_slice, config)
            diversity_future = pool.submit(self.mine_diversity, rating_slice, config)
            similarity = pool.gather(similarity_future)
            diversity = pool.gather(diversity_future)
        else:
            similarity = self.mine_similarity(rating_slice, config)
            diversity = self.mine_diversity(rating_slice, config)
        elapsed = time.perf_counter() - started_at
        query = QuerySummary.build(
            description or f"{len(items)} item(s)",
            items,
            rating_slice,
            time_interval,
        )
        return MiningResult(
            query=query,
            similarity=similarity,
            diversity=diversity,
            config=config,
            elapsed_seconds=elapsed,
        )

    def explain_title(
        self,
        title: str,
        time_interval: Optional[Tuple[int, int]] = None,
        config: Optional[MiningConfig] = None,
    ) -> MiningResult:
        """Convenience: explain the ratings of every item with a given title."""
        items = self.store.dataset.items_by_title(title)
        if not items:
            raise EmptyRatingSetError(f"no item titled {title!r}")
        return self.explain_items(
            [item.item_id for item in items],
            description=f'title:"{title}"',
            time_interval=time_interval,
            config=config,
        )
