"""Shard-local cube enumeration and the coordinator's lossless merge.

The sharded mining backend splits one candidate enumeration over K disjoint
row partitions of the same rating slice.  The protocol is one round of
stateless scatter-gather:

1. The **coordinator** builds the global slice exactly as the serial path
   does and computes the per-attribute *admissible value codes* on it (the
   global support filter of
   :meth:`~repro.core.cube.CandidateEnumerator._attribute_tables` — support
   is a global property, so shards cannot decide it alone).  It ships the
   attribute order, the admissible codes and the description-length limit to
   every shard that holds at least one row of the slice.
2. Each **shard worker** (:func:`enumerate_shard_cells`) walks the same cube
   lattice over its local sub-slice and returns every locally non-empty cell
   of depth ``<= max_length`` whose values are all admissible, as
   ``(pairs, count, rating_sum, packed_bits)`` — a partial bincount cube:
   per-cell local support, local score sum and the packed bitset of local
   member rows.
3. The coordinator **merges** cells by summing counts and sums per cell key
   (:class:`MergedCells`) and **replays** the serial kernel's DFS arithmetic
   over the merged counts (:func:`replay_candidates`): identical admissible
   order, identical viability/support pruning, identical emission order and
   geo-anchor filter.  Each emitted cell's member positions are recovered by
   mapping every shard's bitset through that shard's localmap (shard-local
   row ``i`` is global slice row ``localmap[i]``) and sorting — the exact
   position array the serial kernel would have produced, so
   :meth:`Group.from_positions` computes bit-identical means and errors.

The merge is *lossless by construction*: the partition preserves relative
row order, counts are integers (summation is exact), and floats are only
ever reduced over the identical global arrays.  The property battery
(``tests/property/test_property_sharding.py``) enforces the invariant
"sharded == unsharded" over randomized schedules.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import GEO_ATTRIBUTE, MiningConfig
from ..data.storage import RatingSlice, RatingStore
from ..errors import PoolError
from .cube import CandidateEnumerator
from .groups import Group, GroupDescriptor

__all__ = [
    "MergedCells",
    "admissible_codes",
    "enumerate_shard_cells",
    "replay_candidates",
    "shard_slice",
]

#: A cell key: ((attribute_index, value_code), ...) in DFS attribute order.
CellKey = Tuple[Tuple[int, int], ...]


def shard_slice(
    store: RatingStore,
    item_ids: Optional[Sequence[int]],
    time_interval: Optional[Tuple[int, int]],
    region: Optional[str],
) -> RatingSlice:
    """Build one store's sub-slice of a mining selection, allowing empty.

    Mirrors the slice semantics of the serial paths —
    ``RatingStore.slice_for_items`` for item selections and
    ``GeoExplorer._region_slice`` for within-region mining — but never
    raises on an empty result: a shard legitimately holds no rows of a
    selection.  Called with the *full* store it reproduces the global slice;
    called with a shard store it produces the shard-local sub-slice, in the
    same ascending store-row order (the alignment the merge relies on).
    """
    if region is None:
        if item_ids is None:
            rating_slice = store.slice_all()
            if time_interval is not None:
                rating_slice = rating_slice.restrict_to_interval(*time_interval)
            return rating_slice
        return store.slice_for_items(
            item_ids, time_interval=time_interval, allow_empty=True
        )
    if item_ids is None and time_interval is None:
        if len(store) == 0:
            return store.slice_rows(np.array([], dtype=np.int64))
        index = store.attribute_index(GEO_ATTRIBUTE)
        vocabulary = store.vocabulary_for(GEO_ATTRIBUTE)
        slot = int(np.searchsorted(vocabulary, region))
        if slot >= vocabulary.shape[0] or vocabulary[slot] != region:
            return store.slice_rows(np.array([], dtype=np.int64))
        return store.slice_rows(index.positions_for(slot))
    rating_slice = store.slice_for_items(
        item_ids, time_interval=time_interval, allow_empty=True
    )
    if rating_slice.is_empty():
        return rating_slice
    return rating_slice.restrict(rating_slice.mask_for(GEO_ATTRIBUTE, region))


def admissible_codes(
    enumerator: CandidateEnumerator,
) -> Tuple[Tuple[int, ...], ...]:
    """Per-attribute admissible value codes of the global slice, picklable.

    The exact arrays of ``CandidateEnumerator._attribute_tables`` — computed
    once on the coordinator's global slice and shipped inside every shard
    task, so all shards prune against the same global support filter.
    """
    return tuple(
        tuple(int(code) for code in admissible.tolist())
        for _, _, _, admissible in enumerator._attribute_tables()
    )


def enumerate_shard_cells(
    rating_slice: RatingSlice,
    attributes: Sequence[str],
    admissible: Sequence[Sequence[int]],
    max_length: int,
) -> List[Tuple[CellKey, int, float, bytes]]:
    """Enumerate one shard's non-empty admissible cube cells.

    Walks the same lattice as the serial kernel (attributes in order, each
    cell extended only by later attributes) over the shard's local slice,
    keeping every cell whose values are all globally admissible and that has
    at least one local row.  No support pruning happens here — local support
    says nothing about global support, so the coordinator decides viability
    after the merge.  Returns ``(pairs, count, rating_sum, packed_bits)``
    per cell, where ``pairs`` is the integer cell key, ``count``/
    ``rating_sum`` are the local partials and ``packed_bits`` is the
    ``np.packbits`` bitset of local member rows.
    """
    num_rows = len(rating_slice)
    out: List[Tuple[CellKey, int, float, bytes]] = []
    if num_rows == 0 or not attributes or max_length < 1:
        return out
    codes_list = [rating_slice.codes_for(attribute) for attribute in attributes]
    keep_masks: List[np.ndarray] = []
    for attribute, codes in zip(attributes, admissible):
        vocabulary_size = rating_slice.vocabulary(attribute).shape[0]
        keep = np.zeros(vocabulary_size, dtype=bool)
        if len(codes):
            keep[np.asarray(codes, dtype=np.int64)] = True
        keep_masks.append(keep)
    scores = rating_slice.scores

    def extend(pairs: CellKey, rows: np.ndarray, attribute_index: int) -> None:
        if len(pairs) >= max_length:
            return
        for next_index in range(attribute_index, len(attributes)):
            keep = keep_masks[next_index]
            node_codes = codes_list[next_index][rows]
            kept = keep[node_codes]
            if not kept.any():
                continue
            kept_rows = rows[kept]
            order = np.argsort(node_codes[kept], kind="stable")
            sorted_rows = kept_rows[order]
            sorted_codes = node_codes[kept][order]
            values, starts = np.unique(sorted_codes, return_index=True)
            boundaries = np.append(starts[1:], sorted_codes.shape[0])
            for value, start, end in zip(
                values.tolist(), starts.tolist(), boundaries.tolist()
            ):
                child_rows = sorted_rows[start:end]
                child_pairs = pairs + ((next_index, int(value)),)
                member = np.zeros(num_rows, dtype=bool)
                member[child_rows] = True
                out.append(
                    (
                        child_pairs,
                        int(child_rows.shape[0]),
                        float(np.add.reduce(scores[child_rows])),
                        np.packbits(member).tobytes(),
                    )
                )
                extend(child_pairs, child_rows, next_index + 1)

    extend((), np.arange(num_rows, dtype=np.int64), 0)
    return out


class MergedCells:
    """Coordinator-side accumulator of per-shard cube cells.

    Merges the partial bincount cube: integer counts and score sums add
    exactly; the per-shard packed bitsets are kept as-is and only expanded
    (through each shard's localmap) for cells the replay actually emits.
    """

    def __init__(self) -> None:
        self._cells: Dict[CellKey, List[Any]] = {}

    def add_shard(
        self,
        shard_id: int,
        num_rows: int,
        cells: Sequence[Tuple[CellKey, int, float, bytes]],
    ) -> None:
        """Fold one shard's cells into the merged cube."""
        for pairs, count, rating_sum, bits in cells:
            entry = self._cells.get(pairs)
            if entry is None:
                entry = self._cells[pairs] = [0, 0.0, []]
            entry[0] += int(count)
            entry[1] += float(rating_sum)
            entry[2].append((int(shard_id), int(num_rows), bits))

    def __len__(self) -> int:
        return len(self._cells)

    def count(self, pairs: CellKey) -> int:
        """Merged (global) support of one cell; 0 when no shard reported it."""
        entry = self._cells.get(pairs)
        return 0 if entry is None else int(entry[0])

    def rating_sum(self, pairs: CellKey) -> float:
        """Merged score sum of one cell (diagnostic; exact for half-integer scores)."""
        entry = self._cells.get(pairs)
        return 0.0 if entry is None else float(entry[1])

    def positions(
        self, pairs: CellKey, localmaps: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Global slice positions of one cell's members, ascending.

        Each shard's bitset selects its local member rows; the shard's
        localmap lifts them to global slice positions; the sorted
        concatenation is exactly the position array the unsharded kernel
        computes for the cell.
        """
        entry = self._cells.get(pairs)
        if entry is None:
            return np.array([], dtype=np.int64)
        parts = []
        for shard_id, num_rows, bits in entry[2]:
            member = np.unpackbits(
                np.frombuffer(bits, dtype=np.uint8), count=num_rows
            ).astype(bool)
            parts.append(localmaps[shard_id][member])
        positions = np.concatenate(parts)
        positions.sort()
        return positions


def replay_candidates(
    rating_slice: RatingSlice,
    enumerator: CandidateEnumerator,
    merged: MergedCells,
    localmaps: Sequence[np.ndarray],
) -> List[Group]:
    """Re-run the serial kernel's DFS over merged counts; emit global groups.

    Reproduces :meth:`CandidateEnumerator._extend_kernel` decision for
    decision — admissible iteration order, per-node viability check, support
    threshold, geo-anchor emission filter, recursion into every viable child
    — but reads supports from the merged cube instead of local bincounts,
    and materialises each emitted group from the merged member positions on
    the *global* slice.  Output is therefore the exact candidate list (same
    groups, same order, same floats) the unsharded enumerator returns.

    Raises :class:`~repro.errors.PoolError` when a cell's merged positions
    disagree with its merged count — the merge invariant a lost or duplicated
    shard response would break.
    """
    tables = enumerator._attribute_tables()
    out: List[Group] = []

    def extend(
        descriptor: GroupDescriptor, pairs: CellKey, attribute_index: int
    ) -> None:
        if len(descriptor) >= enumerator.max_description_length:
            return
        for next_index in range(attribute_index, len(tables)):
            attribute, _codes, vocabulary, admissible = tables[next_index]
            if admissible.shape[0] == 0:
                continue
            supports = [
                merged.count(pairs + ((next_index, int(code)),))
                for code in admissible.tolist()
            ]
            viable = sum(
                1 for support in supports if support >= enumerator.min_support
            )
            if viable == 0:
                continue
            for code, support in zip(admissible.tolist(), supports):
                if support < enumerator.min_support:
                    continue
                child_pairs = pairs + ((next_index, int(code)),)
                extended = descriptor.with_pair(attribute, vocabulary[code])
                if not enumerator.require_geo_anchor or extended.has_attribute(
                    enumerator.geo_attribute
                ):
                    positions = merged.positions(child_pairs, localmaps)
                    if int(positions.shape[0]) != support:
                        raise PoolError(
                            "sharded merge invariant violated: cell "
                            f"{extended.label()!r} has merged support {support} "
                            f"but {int(positions.shape[0])} merged member rows"
                        )
                    out.append(
                        Group.from_positions(extended, rating_slice, positions)
                    )
                extend(extended, child_pairs, next_index + 1)

    extend(GroupDescriptor.empty(), (), 0)
    return out


def merged_candidates(
    rating_slice: RatingSlice,
    config: MiningConfig,
    shard_results: Dict[int, Tuple[int, Sequence[Tuple[CellKey, int, float, bytes]]]],
    localmaps: Sequence[np.ndarray],
) -> List[Group]:
    """Merge shard cell lists and replay the kernel in one step.

    ``shard_results`` maps shard id to ``(local_rows, cells)`` as returned
    by :func:`enumerate_shard_cells`; ``localmaps[s]`` holds the global
    slice positions of shard ``s``'s rows.  Validates the row-count
    alignment (each shard reported exactly its localmap's rows, and the
    localmaps tile the slice) before replaying.
    """
    total = 0
    for shard_id, (num_rows, _cells) in shard_results.items():
        expected = int(localmaps[shard_id].shape[0])
        if int(num_rows) != expected:
            raise PoolError(
                f"sharded merge invariant violated: shard {shard_id} mined "
                f"{int(num_rows)} rows but the coordinator mapped {expected}"
            )
    for localmap in localmaps:
        total += int(localmap.shape[0])
    if total != len(rating_slice):
        raise PoolError(
            "sharded merge invariant violated: localmaps cover "
            f"{total} rows of a {len(rating_slice)}-row slice"
        )
    merged = MergedCells()
    for shard_id, (num_rows, cells) in sorted(shard_results.items()):
        merged.add_shard(shard_id, num_rows, cells)
    enumerator = CandidateEnumerator.from_config(rating_slice, config)
    return replay_candidates(rating_slice, enumerator, merged, localmaps)
