"""Reference solvers the RHE algorithm is compared against.

The paper positions RHE as the practical answer to an NP-hard selection
problem; to reproduce that argument we need the comparison points:

* :class:`ExhaustiveSolver` — enumerate every feasible selection of at most
  ``k`` candidates and keep the best.  Optimal, but exponential in ``k`` and
  therefore only usable on small candidate spaces (quality benchmark MRI-Q).
* :class:`GreedyCoverageSolver` — iteratively add the candidate whose addition
  most improves the penalised objective; a natural polynomial heuristic.
* :class:`TopKBySizeSolver` — the "what sites do today" strawman: just take the
  k most popular sub-populations regardless of rating consistency.
* :class:`RandomSolver` — random feasible selection, the floor any optimiser
  must clear.

All solvers return the same :class:`~repro.core.rhe.SolveResult` shape so the
benchmark harness can tabulate them side by side.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import List, Optional, Sequence

import numpy as np

from ..errors import InfeasibleProblemError, MiningError
from .groups import Group
from .problems import MiningProblem
from .rhe import SolveResult


class BaselineSolver:
    """Shared conveniences for the baseline solvers."""

    name = "baseline"

    def solve(self, problem: MiningProblem) -> SolveResult:
        raise NotImplementedError

    def _result(
        self,
        problem: MiningProblem,
        selection: Sequence[Group],
        iterations: int,
        started_at: float,
    ) -> SolveResult:
        ordered = sorted(selection, key=lambda g: (-g.size, g.descriptor))
        return SolveResult(
            groups=list(ordered),
            objective=problem.objective(ordered) if ordered else float("-inf"),
            feasible=problem.is_feasible(ordered) if ordered else False,
            iterations=iterations,
            restarts=1,
            elapsed_seconds=time.perf_counter() - started_at,
            solver=self.name,
        )


class ExhaustiveSolver(BaselineSolver):
    """Optimal enumeration of every selection of 1..k candidates.

    The number of evaluated selections is Σ_{j≤k} C(n, j); ``max_evaluations``
    guards against accidentally launching an astronomically large enumeration
    (the scalability benchmark demonstrates exactly that blow-up).
    """

    name = "exhaustive"

    def __init__(self, max_evaluations: int = 2_000_000) -> None:
        self.max_evaluations = max_evaluations

    def count_selections(self, num_candidates: int, k: int) -> int:
        """Number of selections the solver would have to evaluate."""
        total = 0
        for size in range(1, k + 1):
            count = 1
            for offset in range(size):
                count = count * (num_candidates - offset) // (offset + 1)
            total += count
        return total

    def solve(self, problem: MiningProblem) -> SolveResult:
        started_at = time.perf_counter()
        candidates = problem.candidates
        k = min(problem.max_groups, len(candidates))
        expected = self.count_selections(len(candidates), k)
        if expected > self.max_evaluations:
            raise MiningError(
                f"exhaustive search would evaluate {expected} selections, "
                f"above the safety cap of {self.max_evaluations}"
            )
        best: Optional[List[Group]] = None
        best_value = float("-inf")
        iterations = 0
        for size in range(1, k + 1):
            for combo in combinations(candidates, size):
                iterations += 1
                if not problem.is_feasible(combo):
                    continue
                value = problem.objective(combo)
                if value > best_value:
                    best_value = value
                    best = list(combo)
        if best is None:
            raise InfeasibleProblemError(
                "no feasible selection exists for the given constraints"
            )
        return self._result(problem, best, iterations, started_at)


class GreedyCoverageSolver(BaselineSolver):
    """Greedy construction: repeatedly add the best marginal candidate."""

    name = "greedy"

    def solve(self, problem: MiningProblem) -> SolveResult:
        started_at = time.perf_counter()
        candidates = problem.candidates
        k = min(problem.max_groups, len(candidates))
        selection: List[Group] = []
        selected_keys: set = set()
        iterations = 0
        while len(selection) < k:
            best_candidate: Optional[Group] = None
            best_value = float("-inf")
            for candidate in candidates:
                if candidate.descriptor in selected_keys:
                    continue
                iterations += 1
                value = problem.penalized_objective(selection + [candidate])
                if value > best_value:
                    best_value = value
                    best_candidate = candidate
            if best_candidate is None:
                break
            selection.append(best_candidate)
            selected_keys.add(best_candidate.descriptor)
            # Stop early once feasible and adding more would only hurt.
            if problem.is_feasible(selection) and len(selection) >= 2:
                extended_best = best_value
                current_value = problem.penalized_objective(selection)
                if current_value >= extended_best and len(selection) == k:
                    break
        if not selection:
            raise InfeasibleProblemError("greedy construction produced no selection")
        return self._result(problem, selection, iterations, started_at)


class TopKBySizeSolver(BaselineSolver):
    """Pick the k largest candidate groups — popularity without consistency.

    This mimics the pre-defined aggregates of existing sites the paper
    criticises in §1: the biggest demographic segments, regardless of whether
    their members actually agree.
    """

    name = "top_k_by_size"

    def solve(self, problem: MiningProblem) -> SolveResult:
        started_at = time.perf_counter()
        k = min(problem.max_groups, len(problem.candidates))
        selection = sorted(problem.candidates, key=lambda g: -g.size)[:k]
        if not selection:
            raise InfeasibleProblemError("no candidate groups available")
        return self._result(problem, selection, len(problem.candidates), started_at)


class RandomSolver(BaselineSolver):
    """Uniformly random selection of k candidates (feasibility not sought)."""

    name = "random"

    def __init__(self, seed: int = 2012, attempts: int = 16) -> None:
        self.seed = seed
        self.attempts = max(1, attempts)

    def solve(self, problem: MiningProblem) -> SolveResult:
        started_at = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        candidates = problem.candidates
        k = min(problem.max_groups, len(candidates))
        if k == 0:
            raise InfeasibleProblemError("no candidate groups available")
        best: Optional[List[Group]] = None
        best_value = float("-inf")
        iterations = 0
        for _ in range(self.attempts):
            iterations += 1
            indices = rng.choice(len(candidates), size=k, replace=False)
            selection = [candidates[i] for i in indices]
            value = problem.penalized_objective(selection)
            if value > best_value:
                best_value = value
                best = selection
        assert best is not None
        return self._result(problem, best, iterations, started_at)


def all_baselines(seed: int = 2012) -> List[BaselineSolver]:
    """The standard baseline line-up used by the quality benchmark."""
    return [
        ExhaustiveSolver(),
        GreedyCoverageSolver(),
        TopKBySizeSolver(),
        RandomSolver(seed=seed),
    ]
