"""Candidate group enumeration: the data cube over reviewer attributes (§2.1).

"The set of groups that has at least one rating tuple in R_I are then
constructed" (§2.3).  In practice MapRat restricts candidates to groups that

* are describable with at most ``max_description_length`` attribute/value
  pairs (so the label stays understandable),
* contain at least ``min_group_support`` rating tuples (support pruning —
  group support is anti-monotone in the description, so a DFS over the cube
  lattice can prune whole subtrees), and
* optionally include the geographic attribute so the group can be drawn on
  the map (§3.1).

:class:`CandidateEnumerator` performs that enumeration over one
:class:`~repro.data.storage.RatingSlice` and returns materialised
:class:`~repro.core.groups.Group` objects with cached statistics.

Two equivalent implementations are provided:

* the **integer-coded kernel** (default): lattice nodes carry the *positions*
  of their member tuples; expanding a node by one attribute is a single
  ``np.bincount`` over the node's code column (per-value supports for every
  value at once) plus one stable argsort that splits the node into per-value
  position segments.  No full-slice boolean mask is ever built.
* the **naive reference** (``use_kernel=False``): the seed implementation —
  one precomputed boolean mask per attribute/value pair, AND-combined per
  lattice node.  It is kept as the ground truth for the equivalence property
  tests and the ``BENCH_kernel.json`` before/after comparison.

Both walk the lattice in the same order and materialise groups through the
same :meth:`Group.from_positions`, so their outputs are bit-identical.

A third path short-circuits the walk entirely when the slice's store carries
a **materialised cuboid lattice** (:mod:`repro.data.lattice`): every
candidate is a *cell* of some cuboid, so enumeration reduces to reading the
precomputed cells, filtering on support (a vectorised comparison — support
pruning without recursion) and emitting them in DFS pre-order, which equals
the lexicographic order of the padded ``(attribute, code)`` sequences (one
``np.lexsort``).  Emission goes through the same ``Group.from_positions``
with identical ascending positions, so the output is bit-identical to both
walks; ``use_lattice=False`` keeps the DFS as the always-available reference.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import GEO_ATTRIBUTE, MiningConfig
from ..data.lattice import LatticeHint
from ..data.storage import RatingSlice
from ..errors import MiningError
from .groups import Group, GroupDescriptor


@dataclass(frozen=True)
class EnumerationStats:
    """Bookkeeping of one enumeration run (reported by benchmarks).

    Stats are **per-run values returned by**
    :meth:`CandidateEnumerator.enumerate_with_stats`, never stored on the
    enumerator: the warm pool and request threads share enumerator instances,
    and instance-level counters would interleave concurrent runs.

    Attributes:
        candidates: number of candidate groups returned by the run (after any
            geo filtering).
        explored: lattice nodes visited (support evaluations performed).
        pruned_by_support: nodes cut together with their subtrees.
    """

    candidates: int
    explored: int
    pruned_by_support: int


class _RunCounters:
    """Mutable explored/pruned tally threaded through one enumeration run."""

    __slots__ = ("explored", "pruned")

    def __init__(self) -> None:
        self.explored = 0
        self.pruned = 0


class CandidateEnumerator:
    """Enumerate candidate groups of one rating slice with support pruning."""

    def __init__(
        self,
        rating_slice: RatingSlice,
        grouping_attributes: Sequence[str] = ("gender", "age_group", "occupation", "state"),
        max_description_length: int = 3,
        min_support: int = 5,
        require_geo_anchor: bool = False,
        geo_attribute: str = GEO_ATTRIBUTE,
        use_kernel: bool = True,
        use_lattice: bool = True,
    ) -> None:
        if max_description_length < 1:
            raise MiningError("max_description_length must be at least 1")
        if min_support < 1:
            raise MiningError("min_support must be at least 1")
        self.rating_slice = rating_slice
        self.grouping_attributes = tuple(grouping_attributes)
        self.max_description_length = max_description_length
        self.min_support = min_support
        self.require_geo_anchor = require_geo_anchor
        self.geo_attribute = geo_attribute
        self.use_kernel = use_kernel
        # Take the materialised-lattice fast path when the slice carries a
        # hint (i.e. the store built a lattice); ``False`` pins the DFS as
        # the bit-identical reference for the differential batteries.
        self.use_lattice = use_lattice
        if require_geo_anchor and geo_attribute not in self.grouping_attributes:
            raise MiningError(
                f"geo anchoring requires {geo_attribute!r} among the grouping attributes"
            )

    @classmethod
    def from_config(
        cls, rating_slice: RatingSlice, config: MiningConfig
    ) -> "CandidateEnumerator":
        """Build an enumerator from a :class:`~repro.config.MiningConfig`."""
        return cls(
            rating_slice,
            grouping_attributes=config.grouping_attributes,
            max_description_length=config.max_description_length,
            min_support=config.min_group_support,
            require_geo_anchor=config.require_geo_anchor,
            geo_attribute=config.geo_anchor_attribute,
        )

    # -- enumeration -------------------------------------------------------------

    def enumerate(self) -> List[Group]:
        """Return all candidate groups satisfying support and description limits.

        The DFS walks attributes in a fixed order, extending the current
        partial group one attribute/value pair at a time.  A partial group
        that already falls below the support threshold is pruned together
        with all of its specialisations.
        """
        groups, _ = self.enumerate_with_stats()
        return groups

    def enumerate_with_stats(self) -> Tuple[List[Group], EnumerationStats]:
        """Like :meth:`enumerate`, additionally returning per-run statistics.

        The stats object is built from counters local to this call, so
        concurrent runs on one shared enumerator (warm pool + request thread)
        never interleave each other's ``explored``/``pruned_by_support``.
        """
        counters = _RunCounters()
        if self.rating_slice.is_empty():
            return [], EnumerationStats(0, 0, 0)
        hint = getattr(self.rating_slice, "lattice_hint", None)
        if self.use_lattice and hint is not None:
            # Materialised-lattice fast path: candidates are read out of (or
            # scanned into) precomputed cuboid cells — no recursive walk.
            # ``explored`` counts cells examined, ``pruned_by_support`` the
            # cells a vectorised support filter dropped.
            groups = self._enumerate_lattice(hint, counters)
        elif self.use_kernel:
            # The kernel applies the geo filter at emission time (skipping the
            # materialisation of groups the filter would drop); the naive
            # reference keeps the historical post-hoc filter.  Same output.
            groups = self._enumerate_kernel(counters)
        else:
            groups = self._enumerate_naive(counters)
            if self.require_geo_anchor:
                groups = [
                    g for g in groups if g.descriptor.has_attribute(self.geo_attribute)
                ]
        stats = EnumerationStats(
            candidates=len(groups),
            explored=counters.explored,
            pruned_by_support=counters.pruned,
        )
        return groups, stats

    # -- integer-coded kernel -----------------------------------------------------

    def _attribute_tables(self) -> List[Tuple[str, np.ndarray, np.ndarray, List[int]]]:
        """Per attribute: (name, codes, vocabulary, admissible value codes).

        A value code is admissible when the value is non-empty and its
        slice-level support already meets the threshold — the same filter the
        naive path applies when precomputing value masks, so both walks visit
        the exact same (attribute, value) sequence.
        """
        tables = []
        for attribute in self.grouping_attributes:
            codes = self.rating_slice.codes_for(attribute)
            vocabulary = self.rating_slice.vocabulary(attribute)
            counts = np.bincount(codes, minlength=vocabulary.shape[0])
            admissible = np.array(
                [
                    code
                    for code in np.flatnonzero(counts >= self.min_support).tolist()
                    if vocabulary[code]
                ],
                dtype=np.int64,
            )
            tables.append((attribute, codes, vocabulary, admissible))
        return tables

    def _enumerate_kernel(self, counters: _RunCounters) -> List[Group]:
        tables = self._attribute_tables()
        groups: List[Group] = []
        rows = np.arange(len(self.rating_slice), dtype=np.int64)
        self._extend_kernel(GroupDescriptor.empty(), rows, 0, tables, groups, counters)
        return groups

    def _extend_kernel(
        self,
        descriptor: GroupDescriptor,
        rows: np.ndarray,
        attribute_index: int,
        tables: List[Tuple[str, np.ndarray, np.ndarray, List[int]]],
        out: List[Group],
        counters: _RunCounters,
    ) -> None:
        if len(descriptor) >= self.max_description_length:
            return
        for next_index in range(attribute_index, len(tables)):
            attribute, codes, vocabulary, admissible = tables[next_index]
            if admissible.shape[0] == 0:
                continue
            node_codes = codes[rows]
            counts = np.bincount(node_codes, minlength=vocabulary.shape[0])
            admissible_counts = counts[admissible]
            viable = int((admissible_counts >= self.min_support).sum())
            counters.explored += admissible.shape[0]
            counters.pruned += admissible.shape[0] - viable
            if viable == 0:
                continue
            # Stable sort by code: per-value position segments, each ascending.
            order = np.argsort(node_codes, kind="stable")
            sorted_rows = rows[order]
            ends = np.cumsum(counts)
            for code, support in zip(
                admissible.tolist(), admissible_counts.tolist()
            ):
                if support < self.min_support:
                    continue
                end = int(ends[code])
                child_rows = sorted_rows[end - support : end]
                extended = descriptor.with_pair(attribute, vocabulary[code])
                if not self.require_geo_anchor or extended.has_attribute(
                    self.geo_attribute
                ):
                    out.append(
                        Group.from_positions(extended, self.rating_slice, child_rows)
                    )
                self._extend_kernel(
                    extended, child_rows, next_index + 1, tables, out, counters
                )

    # -- materialised-lattice fast path --------------------------------------------

    def _lattice_subsets(self) -> List[Tuple[int, ...]]:
        """Attribute-index combinations whose cells the DFS would emit.

        Every candidate descriptor uses between 1 and
        ``max_description_length`` distinct attributes; with a geo anchor
        required, combinations without the anchor attribute produce nothing
        and are skipped outright (the DFS recurses through them but filters
        their emissions — same output either way).
        """
        n = len(self.grouping_attributes)
        max_len = min(self.max_description_length, n)
        geo_index = (
            self.grouping_attributes.index(self.geo_attribute)
            if self.require_geo_anchor
            else None
        )
        return [
            combo
            for size in range(1, max_len + 1)
            for combo in itertools.combinations(range(n), size)
            if geo_index is None or geo_index in combo
        ]

    def _lattice_mode(self, hint: LatticeHint, subsets: List[Tuple[int, ...]]) -> str:
        """Pick the cell source: ``direct``, ``restrict`` or ``scan``.

        ``direct``/``restrict`` read precomputed cuboids and need every
        required combination materialised with vocabulary sizes matching the
        slice; anything else (missing cuboid, stale dims, arbitrary subset
        slice) falls back to ``scan``, which groups the slice's own code
        columns and needs no lattice data at all.
        """
        lattice = hint.lattice
        if hint.whole_store and len(self.rating_slice) == lattice.num_rows:
            mode = "direct"
            extra: Tuple[str, ...] = ()
        elif (
            hint.restrict_attribute is not None
            and hint.restrict_code is not None
            and hint.store_positions is not None
            and len(self.rating_slice) == int(hint.store_positions.shape[0])
        ):
            mode = "restrict"
            extra = (hint.restrict_attribute,)
        else:
            return "scan"
        for subset in subsets:
            attrs = {self.grouping_attributes[i] for i in subset} | set(extra)
            cub = lattice.cells_for(attrs)
            if cub is None:
                return "scan"
            dims = tuple(
                int(self.rating_slice.vocabulary(a).shape[0]) for a in cub.attributes
            )
            if dims != cub.dims:
                return "scan"
        return mode

    def _memo_key(self, mode: str, hint: LatticeHint) -> Optional[Tuple]:
        """Memo key of this enumeration on the lattice, or ``None``.

        ``direct`` and ``restrict`` slices are fully determined by the store
        epoch (the lattice's lifetime) plus the restriction value, so their
        materialised candidate lists are memoised on the lattice and every
        later cold request for the same parameters is a dictionary lookup.
        ``scan`` slices are arbitrary row subsets with no cheap identity —
        they always recompute.
        """
        if mode == "direct":
            anchor: Tuple = ()
        elif mode == "restrict":
            anchor = (hint.restrict_attribute, int(hint.restrict_code))
        else:
            return None
        return (
            mode,
            anchor,
            self.grouping_attributes,
            self.max_description_length,
            self.min_support,
            self.require_geo_anchor,
            self.geo_attribute,
        )

    @staticmethod
    def _gather_segments(
        source: np.ndarray, starts: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Concatenate ``source[starts[i]:starts[i]+counts[i]]`` segments."""
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=source.dtype)
        out_starts = np.zeros(counts.shape[0], dtype=np.int64)
        np.cumsum(counts[:-1], out=out_starts[1:])
        take = np.repeat(starts - out_starts, counts)
        take += np.arange(total, dtype=np.int64)
        return source[take]

    def _lattice_cells(
        self,
        subset: Tuple[int, ...],
        hint: LatticeHint,
        mode: str,
        vocabs: List[np.ndarray],
        nonempty: List[np.ndarray],
        counters: _RunCounters,
    ) -> Optional[Tuple[Tuple[int, ...], np.ndarray, np.ndarray, np.ndarray]]:
        """Admissible cells of one attribute combination.

        Returns ``(subset, keys, offsets, rows)`` where ``keys[i]`` are the
        value codes of cell ``i`` (columns in ``subset`` order), and
        ``rows[offsets[i]:offsets[i+1]]`` its ascending slice-row positions —
        or ``None`` when no cell survives.  Support pruning is the vectorised
        ``counts >= min_support`` filter; empty-string values are dropped the
        same way the DFS's admissibility tables drop them (cell support below
        a value's slice support makes the rest of that filter redundant).
        """
        attrs = [self.grouping_attributes[i] for i in subset]
        if mode == "scan":
            columns = [
                self.rating_slice.codes_for(a).astype(np.int64, copy=False)
                for a in attrs
            ]
            dims = tuple(int(vocabs[i].shape[0]) for i in subset)
            lin = np.ravel_multi_index(tuple(columns), dims).astype(np.int64)
            order = np.argsort(lin, kind="stable").astype(np.int64, copy=False)
            cells, counts = np.unique(lin, return_counts=True)
            keys = np.stack(np.unravel_index(cells, dims), axis=1).astype(np.int64)
            positions = order
            starts_all = np.zeros(counts.shape[0], dtype=np.int64)
            np.cumsum(counts[:-1], out=starts_all[1:])
            to_slice_rows = None
        else:
            lattice = hint.lattice
            extra = () if mode == "direct" else (hint.restrict_attribute,)
            cub = lattice.cells_for(set(attrs) | set(extra))
            perm = [cub.attributes.index(a) for a in attrs]
            if mode == "direct":
                picked = np.arange(cub.num_cells, dtype=np.int64)
            else:
                anchor = cub.attributes.index(hint.restrict_attribute)
                picked = np.flatnonzero(
                    cub.keys[:, anchor] == np.int32(hint.restrict_code)
                )
            counts = cub.counts[picked]
            keys = cub.keys[picked][:, perm].astype(np.int64)
            positions = cub.positions
            starts_all = cub.offsets[:-1][picked]
            to_slice_rows = hint.store_positions if mode == "restrict" else None
        num_cells = int(counts.shape[0])
        supported = counts >= self.min_support
        counters.explored += num_cells
        counters.pruned += num_cells - int(supported.sum())
        sel = supported
        for j, attr_index in enumerate(subset):
            sel = sel & nonempty[attr_index][keys[:, j]]
        picked_cells = np.flatnonzero(sel)
        if picked_cells.shape[0] == 0:
            return None
        sel_counts = counts[picked_cells].astype(np.int64, copy=False)
        rows = self._gather_segments(positions, starts_all[picked_cells], sel_counts)
        if to_slice_rows is not None:
            # Store-row positions → slice-row positions: the slice is exactly
            # the restricted rows in ascending order, so the map is one
            # searchsorted (monotone — per-cell ascending order survives).
            rows = np.searchsorted(to_slice_rows, rows)
        offsets = np.zeros(picked_cells.shape[0] + 1, dtype=np.int64)
        np.cumsum(sel_counts, out=offsets[1:])
        return subset, keys[picked_cells], offsets, rows

    def _enumerate_lattice(self, hint: LatticeHint, counters: _RunCounters) -> List[Group]:
        """Enumerate candidates from materialised (or scanned) cuboid cells.

        The DFS emits a candidate when it appends the descriptor's last
        attribute/value pair, so its emission order is the lexicographic
        order of the descriptors' ``(attribute index, code)`` sequences with
        prefixes first.  Padding every sequence to the maximum length with a
        ``-1`` sentinel (real entries are non-negative) turns that into a
        plain ``np.lexsort`` — cells from every combination are emitted in
        exactly the DFS order, bit for bit.
        """
        subsets = self._lattice_subsets()
        if not subsets:
            return []
        mode = self._lattice_mode(hint, subsets)
        memo_key = self._memo_key(mode, hint)
        if memo_key is not None:
            cached = hint.lattice.candidate_memo.get(memo_key)
            if cached is not None:
                groups, explored, pruned = cached
                counters.explored += explored
                counters.pruned += pruned
                return list(groups)
        vocabs = [self.rating_slice.vocabulary(a) for a in self.grouping_attributes]
        nonempty = [
            np.array([bool(value) for value in vocab.tolist()], dtype=bool)
            for vocab in vocabs
        ]
        entries = []
        for subset in subsets:
            entry = self._lattice_cells(subset, hint, mode, vocabs, nonempty, counters)
            if entry is not None:
                entries.append(entry)
        if not entries:
            return []
        max_len = max(len(entry[0]) for entry in entries)
        encoded_blocks: List[np.ndarray] = []
        entry_of_parts: List[np.ndarray] = []
        local_of_parts: List[np.ndarray] = []
        for entry_index, (subset, keys, _, _) in enumerate(entries):
            encoded = np.full((keys.shape[0], max_len), -1, dtype=np.int64)
            for j, attr_index in enumerate(subset):
                encoded[:, j] = (np.int64(attr_index) << np.int64(32)) | keys[:, j]
            encoded_blocks.append(encoded)
            entry_of_parts.append(
                np.full(keys.shape[0], entry_index, dtype=np.int64)
            )
            local_of_parts.append(np.arange(keys.shape[0], dtype=np.int64))
        encoded_all = np.concatenate(encoded_blocks)
        entry_of = np.concatenate(entry_of_parts)
        local_of = np.concatenate(local_of_parts)
        # np.lexsort sorts by its *last* key first; feed columns reversed so
        # column 0 (the first attribute/value pair) is the primary key.
        order = np.lexsort(tuple(encoded_all[:, j] for j in range(max_len - 1, -1, -1)))
        # Descriptors are value objects: building each one directly from its
        # final pair tuple equals the DFS's incremental with_pair chain (the
        # constructor normalises by sorting) at a fraction of the cost.
        value_lists = [vocab.tolist() for vocab in vocabs]
        names = self.grouping_attributes
        groups: List[Group] = []
        for rank in order.tolist():
            subset, keys, offsets, rows = entries[int(entry_of[rank])]
            cell = int(local_of[rank])
            segment = rows[int(offsets[cell]) : int(offsets[cell + 1])]
            descriptor = GroupDescriptor(
                tuple(
                    (names[attr_index], value_lists[attr_index][int(keys[cell, j])])
                    for j, attr_index in enumerate(subset)
                )
            )
            groups.append(Group.from_positions(descriptor, self.rating_slice, segment))
        if memo_key is not None:
            # First materialisation of this (slice, parameters) pair this
            # epoch: remember it on the lattice so subsequent cold requests
            # are pure lookups.  Groups are immutable value objects (their
            # packed-bits cache is idempotent), mirroring how the result
            # cache already shares whole MiningResults across requests.
            hint.lattice.candidate_memo[memo_key] = (
                tuple(groups),
                counters.explored,
                counters.pruned,
            )
        return groups

    # -- naive reference ----------------------------------------------------------

    def _enumerate_naive(self, counters: _RunCounters) -> List[Group]:
        value_masks = self._value_masks()
        groups: List[Group] = []
        all_mask = np.ones(len(self.rating_slice), dtype=bool)
        self._extend_naive(
            descriptor=GroupDescriptor.empty(),
            mask=all_mask,
            attribute_index=0,
            value_masks=value_masks,
            out=groups,
            counters=counters,
        )
        return groups

    def _value_masks(self) -> Dict[str, List[Tuple[str, np.ndarray]]]:
        """Precompute the boolean mask of every attribute/value pair."""
        masks: Dict[str, List[Tuple[str, np.ndarray]]] = {}
        for attribute in self.grouping_attributes:
            per_value: List[Tuple[str, np.ndarray]] = []
            for value in self.rating_slice.distinct_values(attribute):
                mask = self.rating_slice.mask_for(attribute, value)
                if int(mask.sum()) >= self.min_support:
                    per_value.append((value, mask))
            masks[attribute] = per_value
        return masks

    def _extend_naive(
        self,
        descriptor: GroupDescriptor,
        mask: np.ndarray,
        attribute_index: int,
        value_masks: Dict[str, List[Tuple[str, np.ndarray]]],
        out: List[Group],
        counters: _RunCounters,
    ) -> None:
        if len(descriptor) >= self.max_description_length:
            return
        for next_index in range(attribute_index, len(self.grouping_attributes)):
            attribute = self.grouping_attributes[next_index]
            for value, value_mask in value_masks[attribute]:
                counters.explored += 1
                combined = mask & value_mask
                support = int(combined.sum())
                if support < self.min_support:
                    counters.pruned += 1
                    continue
                extended = descriptor.with_pair(attribute, value)
                out.append(Group.from_mask(extended, self.rating_slice, combined))
                self._extend_naive(
                    extended, combined, next_index + 1, value_masks, out, counters
                )


def enumerate_candidates(
    rating_slice: RatingSlice, config: MiningConfig
) -> List[Group]:
    """Convenience wrapper: enumerate candidates under a mining configuration."""
    return CandidateEnumerator.from_config(rating_slice, config).enumerate()
