"""Candidate group enumeration: the data cube over reviewer attributes (§2.1).

"The set of groups that has at least one rating tuple in R_I are then
constructed" (§2.3).  In practice MapRat restricts candidates to groups that

* are describable with at most ``max_description_length`` attribute/value
  pairs (so the label stays understandable),
* contain at least ``min_group_support`` rating tuples (support pruning —
  group support is anti-monotone in the description, so a DFS over the cube
  lattice can prune whole subtrees), and
* optionally include the geographic attribute so the group can be drawn on
  the map (§3.1).

:class:`CandidateEnumerator` performs that enumeration over one
:class:`~repro.data.storage.RatingSlice` and returns materialised
:class:`~repro.core.groups.Group` objects with cached statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import GEO_ATTRIBUTE, MiningConfig
from ..data.storage import RatingSlice
from ..errors import MiningError
from .groups import Group, GroupDescriptor


@dataclass(frozen=True)
class EnumerationStats:
    """Bookkeeping of one enumeration run (reported by benchmarks)."""

    candidates: int
    explored: int
    pruned_by_support: int


class CandidateEnumerator:
    """Enumerate candidate groups of one rating slice with support pruning."""

    def __init__(
        self,
        rating_slice: RatingSlice,
        grouping_attributes: Sequence[str] = ("gender", "age_group", "occupation", "state"),
        max_description_length: int = 3,
        min_support: int = 5,
        require_geo_anchor: bool = False,
        geo_attribute: str = GEO_ATTRIBUTE,
    ) -> None:
        if max_description_length < 1:
            raise MiningError("max_description_length must be at least 1")
        if min_support < 1:
            raise MiningError("min_support must be at least 1")
        self.rating_slice = rating_slice
        self.grouping_attributes = tuple(grouping_attributes)
        self.max_description_length = max_description_length
        self.min_support = min_support
        self.require_geo_anchor = require_geo_anchor
        self.geo_attribute = geo_attribute
        if require_geo_anchor and geo_attribute not in self.grouping_attributes:
            raise MiningError(
                f"geo anchoring requires {geo_attribute!r} among the grouping attributes"
            )
        self._explored = 0
        self._pruned = 0

    @classmethod
    def from_config(
        cls, rating_slice: RatingSlice, config: MiningConfig
    ) -> "CandidateEnumerator":
        """Build an enumerator from a :class:`~repro.config.MiningConfig`."""
        return cls(
            rating_slice,
            grouping_attributes=config.grouping_attributes,
            max_description_length=config.max_description_length,
            min_support=config.min_group_support,
            require_geo_anchor=config.require_geo_anchor,
        )

    # -- enumeration -------------------------------------------------------------

    def enumerate(self) -> List[Group]:
        """Return all candidate groups satisfying support and description limits.

        The DFS walks attributes in a fixed order, extending the current
        partial mask one attribute/value pair at a time.  A partial group that
        already falls below the support threshold is pruned together with all
        of its specialisations.
        """
        self._explored = 0
        self._pruned = 0
        if self.rating_slice.is_empty():
            return []
        value_masks = self._value_masks()
        groups: List[Group] = []
        all_mask = np.ones(len(self.rating_slice), dtype=bool)
        self._extend(
            descriptor=GroupDescriptor.empty(),
            mask=all_mask,
            attribute_index=0,
            value_masks=value_masks,
            out=groups,
        )
        if self.require_geo_anchor:
            groups = [g for g in groups if g.descriptor.has_attribute(self.geo_attribute)]
        return groups

    def stats(self) -> EnumerationStats:
        """Statistics of the most recent :meth:`enumerate` call."""
        return EnumerationStats(
            candidates=-1 if self._explored == 0 else self._explored - self._pruned,
            explored=self._explored,
            pruned_by_support=self._pruned,
        )

    # -- internals ---------------------------------------------------------------

    def _value_masks(self) -> Dict[str, List[Tuple[str, np.ndarray]]]:
        """Precompute the boolean mask of every attribute/value pair."""
        masks: Dict[str, List[Tuple[str, np.ndarray]]] = {}
        for attribute in self.grouping_attributes:
            per_value: List[Tuple[str, np.ndarray]] = []
            for value in self.rating_slice.distinct_values(attribute):
                mask = self.rating_slice.mask_for(attribute, value)
                if int(mask.sum()) >= self.min_support:
                    per_value.append((value, mask))
            masks[attribute] = per_value
        return masks

    def _extend(
        self,
        descriptor: GroupDescriptor,
        mask: np.ndarray,
        attribute_index: int,
        value_masks: Dict[str, List[Tuple[str, np.ndarray]]],
        out: List[Group],
    ) -> None:
        if len(descriptor) >= self.max_description_length:
            return
        for next_index in range(attribute_index, len(self.grouping_attributes)):
            attribute = self.grouping_attributes[next_index]
            for value, value_mask in value_masks[attribute]:
                self._explored += 1
                combined = mask & value_mask
                support = int(combined.sum())
                if support < self.min_support:
                    self._pruned += 1
                    continue
                extended = descriptor.with_pair(attribute, value)
                out.append(Group.from_mask(extended, self.rating_slice, combined))
                self._extend(extended, combined, next_index + 1, value_masks, out)


def enumerate_candidates(
    rating_slice: RatingSlice, config: MiningConfig
) -> List[Group]:
    """Convenience wrapper: enumerate candidates under a mining configuration."""
    return CandidateEnumerator.from_config(rating_slice, config).enumerate()
