"""Candidate group enumeration: the data cube over reviewer attributes (§2.1).

"The set of groups that has at least one rating tuple in R_I are then
constructed" (§2.3).  In practice MapRat restricts candidates to groups that

* are describable with at most ``max_description_length`` attribute/value
  pairs (so the label stays understandable),
* contain at least ``min_group_support`` rating tuples (support pruning —
  group support is anti-monotone in the description, so a DFS over the cube
  lattice can prune whole subtrees), and
* optionally include the geographic attribute so the group can be drawn on
  the map (§3.1).

:class:`CandidateEnumerator` performs that enumeration over one
:class:`~repro.data.storage.RatingSlice` and returns materialised
:class:`~repro.core.groups.Group` objects with cached statistics.

Two equivalent implementations are provided:

* the **integer-coded kernel** (default): lattice nodes carry the *positions*
  of their member tuples; expanding a node by one attribute is a single
  ``np.bincount`` over the node's code column (per-value supports for every
  value at once) plus one stable argsort that splits the node into per-value
  position segments.  No full-slice boolean mask is ever built.
* the **naive reference** (``use_kernel=False``): the seed implementation —
  one precomputed boolean mask per attribute/value pair, AND-combined per
  lattice node.  It is kept as the ground truth for the equivalence property
  tests and the ``BENCH_kernel.json`` before/after comparison.

Both walk the lattice in the same order and materialise groups through the
same :meth:`Group.from_positions`, so their outputs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import GEO_ATTRIBUTE, MiningConfig
from ..data.storage import RatingSlice
from ..errors import MiningError
from .groups import Group, GroupDescriptor


@dataclass(frozen=True)
class EnumerationStats:
    """Bookkeeping of one enumeration run (reported by benchmarks).

    Attributes:
        candidates: number of candidate groups actually returned by the most
            recent :meth:`CandidateEnumerator.enumerate` call (after any geo
            filtering); ``-1`` when enumeration has not run yet.
        explored: lattice nodes visited (support evaluations performed).
        pruned_by_support: nodes cut together with their subtrees.
    """

    candidates: int
    explored: int
    pruned_by_support: int


class CandidateEnumerator:
    """Enumerate candidate groups of one rating slice with support pruning."""

    def __init__(
        self,
        rating_slice: RatingSlice,
        grouping_attributes: Sequence[str] = ("gender", "age_group", "occupation", "state"),
        max_description_length: int = 3,
        min_support: int = 5,
        require_geo_anchor: bool = False,
        geo_attribute: str = GEO_ATTRIBUTE,
        use_kernel: bool = True,
    ) -> None:
        if max_description_length < 1:
            raise MiningError("max_description_length must be at least 1")
        if min_support < 1:
            raise MiningError("min_support must be at least 1")
        self.rating_slice = rating_slice
        self.grouping_attributes = tuple(grouping_attributes)
        self.max_description_length = max_description_length
        self.min_support = min_support
        self.require_geo_anchor = require_geo_anchor
        self.geo_attribute = geo_attribute
        self.use_kernel = use_kernel
        if require_geo_anchor and geo_attribute not in self.grouping_attributes:
            raise MiningError(
                f"geo anchoring requires {geo_attribute!r} among the grouping attributes"
            )
        self._explored = 0
        self._pruned = 0
        self._emitted: Optional[int] = None

    @classmethod
    def from_config(
        cls, rating_slice: RatingSlice, config: MiningConfig
    ) -> "CandidateEnumerator":
        """Build an enumerator from a :class:`~repro.config.MiningConfig`."""
        return cls(
            rating_slice,
            grouping_attributes=config.grouping_attributes,
            max_description_length=config.max_description_length,
            min_support=config.min_group_support,
            require_geo_anchor=config.require_geo_anchor,
            geo_attribute=config.geo_anchor_attribute,
        )

    # -- enumeration -------------------------------------------------------------

    def enumerate(self) -> List[Group]:
        """Return all candidate groups satisfying support and description limits.

        The DFS walks attributes in a fixed order, extending the current
        partial group one attribute/value pair at a time.  A partial group
        that already falls below the support threshold is pruned together
        with all of its specialisations.
        """
        self._explored = 0
        self._pruned = 0
        if self.rating_slice.is_empty():
            self._emitted = 0
            return []
        if self.use_kernel:
            # The kernel applies the geo filter at emission time (skipping the
            # materialisation of groups the filter would drop); the naive
            # reference keeps the historical post-hoc filter.  Same output.
            groups = self._enumerate_kernel()
        else:
            groups = self._enumerate_naive()
            if self.require_geo_anchor:
                groups = [
                    g for g in groups if g.descriptor.has_attribute(self.geo_attribute)
                ]
        self._emitted = len(groups)
        return groups

    def stats(self) -> EnumerationStats:
        """Statistics of the most recent :meth:`enumerate` call."""
        return EnumerationStats(
            candidates=-1 if self._emitted is None else self._emitted,
            explored=self._explored,
            pruned_by_support=self._pruned,
        )

    # -- integer-coded kernel -----------------------------------------------------

    def _attribute_tables(self) -> List[Tuple[str, np.ndarray, np.ndarray, List[int]]]:
        """Per attribute: (name, codes, vocabulary, admissible value codes).

        A value code is admissible when the value is non-empty and its
        slice-level support already meets the threshold — the same filter the
        naive path applies when precomputing value masks, so both walks visit
        the exact same (attribute, value) sequence.
        """
        tables = []
        for attribute in self.grouping_attributes:
            codes = self.rating_slice.codes_for(attribute)
            vocabulary = self.rating_slice.vocabulary(attribute)
            counts = np.bincount(codes, minlength=vocabulary.shape[0])
            admissible = np.array(
                [
                    code
                    for code in np.flatnonzero(counts >= self.min_support).tolist()
                    if vocabulary[code]
                ],
                dtype=np.int64,
            )
            tables.append((attribute, codes, vocabulary, admissible))
        return tables

    def _enumerate_kernel(self) -> List[Group]:
        tables = self._attribute_tables()
        groups: List[Group] = []
        rows = np.arange(len(self.rating_slice), dtype=np.int64)
        self._extend_kernel(GroupDescriptor.empty(), rows, 0, tables, groups)
        return groups

    def _extend_kernel(
        self,
        descriptor: GroupDescriptor,
        rows: np.ndarray,
        attribute_index: int,
        tables: List[Tuple[str, np.ndarray, np.ndarray, List[int]]],
        out: List[Group],
    ) -> None:
        if len(descriptor) >= self.max_description_length:
            return
        for next_index in range(attribute_index, len(tables)):
            attribute, codes, vocabulary, admissible = tables[next_index]
            if admissible.shape[0] == 0:
                continue
            node_codes = codes[rows]
            counts = np.bincount(node_codes, minlength=vocabulary.shape[0])
            admissible_counts = counts[admissible]
            viable = int((admissible_counts >= self.min_support).sum())
            self._explored += admissible.shape[0]
            self._pruned += admissible.shape[0] - viable
            if viable == 0:
                continue
            # Stable sort by code: per-value position segments, each ascending.
            order = np.argsort(node_codes, kind="stable")
            sorted_rows = rows[order]
            ends = np.cumsum(counts)
            for code, support in zip(
                admissible.tolist(), admissible_counts.tolist()
            ):
                if support < self.min_support:
                    continue
                end = int(ends[code])
                child_rows = sorted_rows[end - support : end]
                extended = descriptor.with_pair(attribute, vocabulary[code])
                if not self.require_geo_anchor or extended.has_attribute(
                    self.geo_attribute
                ):
                    out.append(
                        Group.from_positions(extended, self.rating_slice, child_rows)
                    )
                self._extend_kernel(extended, child_rows, next_index + 1, tables, out)

    # -- naive reference ----------------------------------------------------------

    def _enumerate_naive(self) -> List[Group]:
        value_masks = self._value_masks()
        groups: List[Group] = []
        all_mask = np.ones(len(self.rating_slice), dtype=bool)
        self._extend_naive(
            descriptor=GroupDescriptor.empty(),
            mask=all_mask,
            attribute_index=0,
            value_masks=value_masks,
            out=groups,
        )
        return groups

    def _value_masks(self) -> Dict[str, List[Tuple[str, np.ndarray]]]:
        """Precompute the boolean mask of every attribute/value pair."""
        masks: Dict[str, List[Tuple[str, np.ndarray]]] = {}
        for attribute in self.grouping_attributes:
            per_value: List[Tuple[str, np.ndarray]] = []
            for value in self.rating_slice.distinct_values(attribute):
                mask = self.rating_slice.mask_for(attribute, value)
                if int(mask.sum()) >= self.min_support:
                    per_value.append((value, mask))
            masks[attribute] = per_value
        return masks

    def _extend_naive(
        self,
        descriptor: GroupDescriptor,
        mask: np.ndarray,
        attribute_index: int,
        value_masks: Dict[str, List[Tuple[str, np.ndarray]]],
        out: List[Group],
    ) -> None:
        if len(descriptor) >= self.max_description_length:
            return
        for next_index in range(attribute_index, len(self.grouping_attributes)):
            attribute = self.grouping_attributes[next_index]
            for value, value_mask in value_masks[attribute]:
                self._explored += 1
                combined = mask & value_mask
                support = int(combined.sum())
                if support < self.min_support:
                    self._pruned += 1
                    continue
                extended = descriptor.with_pair(attribute, value)
                out.append(Group.from_mask(extended, self.rating_slice, combined))
                self._extend_naive(extended, combined, next_index + 1, value_masks, out)


def enumerate_candidates(
    rating_slice: RatingSlice, config: MiningConfig
) -> List[Group]:
    """Convenience wrapper: enumerate candidates under a mining configuration."""
    return CandidateEnumerator.from_config(rating_slice, config).enumerate()
