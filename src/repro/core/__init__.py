"""Rating-mining core: the paper's primary contribution.

Given the rating tuples of one item query, this package

* enumerates candidate reviewer groups in data-cube fashion
  (:mod:`repro.core.cube`, §2.1),
* scores selections of groups with the Similarity / Diversity objectives
  (:mod:`repro.core.measures`, §2.2),
* enforces the meaningfulness constraints — few groups, minimum coverage,
  short descriptions, geo anchoring (:mod:`repro.core.constraints`),
* solves the two NP-hard selection problems with Randomized Hill Exploration
  (:mod:`repro.core.rhe`) or one of the reference baselines
  (:mod:`repro.core.baselines`), and
* packages the result as explanation objects consumed by the visualization and
  exploration layers (:mod:`repro.core.explanation`).

:class:`~repro.core.miner.RatingMiner` is the façade that ties these steps
together — it is the "Rating Mining" architecture component of §2.3.
"""

from .groups import Group, GroupDescriptor
from .cube import CandidateEnumerator, enumerate_candidates
from .measures import (
    coverage,
    covered_positions,
    diversity_objective,
    pairwise_disagreement,
    similarity_objective,
    within_group_error,
)
from .constraints import (
    ConstraintSet,
    DescriptionLengthConstraint,
    GeoAnchorConstraint,
    MaxGroupsConstraint,
    MinCoverageConstraint,
    MinSupportConstraint,
)
from .problems import DiversityProblem, MiningProblem, SimilarityProblem
from .rhe import RandomizedHillExploration, SolveResult
from .annealing import SimulatedAnnealingSolver
from .baselines import (
    ExhaustiveSolver,
    GreedyCoverageSolver,
    RandomSolver,
    TopKBySizeSolver,
)
from .explanation import Explanation, GroupExplanation, MiningResult
from .miner import RatingMiner

__all__ = [
    "Group",
    "GroupDescriptor",
    "CandidateEnumerator",
    "enumerate_candidates",
    "coverage",
    "covered_positions",
    "diversity_objective",
    "pairwise_disagreement",
    "similarity_objective",
    "within_group_error",
    "ConstraintSet",
    "DescriptionLengthConstraint",
    "GeoAnchorConstraint",
    "MaxGroupsConstraint",
    "MinCoverageConstraint",
    "MinSupportConstraint",
    "DiversityProblem",
    "MiningProblem",
    "SimilarityProblem",
    "RandomizedHillExploration",
    "SolveResult",
    "SimulatedAnnealingSolver",
    "ExhaustiveSolver",
    "GreedyCoverageSolver",
    "RandomSolver",
    "TopKBySizeSolver",
    "Explanation",
    "GroupExplanation",
    "MiningResult",
    "RatingMiner",
]
