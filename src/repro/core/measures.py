"""Objective measures for Similarity and Diversity Mining (§2.2).

The "essential characteristics of a good group" in §2.2 translate into three
measurable quantities over a *selection* of groups:

* **coverage** — the fraction of the input rating tuples covered by the union
  of the selected groups ("the groups should together cover a significant
  proportion of available ratings"),
* **within-group error** — how far individual ratings inside a group sit from
  the group mean ("ratings within each group should be as consistent as
  possible"); Similarity Mining minimises this,
* **pairwise disagreement** — how far the selected groups' average ratings sit
  from one another; Diversity Mining maximises this while keeping each group
  internally consistent.

The primary functions operate on :class:`~repro.core.groups.Group` objects
whose statistics were cached at materialisation time.  Each one has a
``*_values`` twin operating on plain scalar sequences (sizes, errors, means in
selection order): those are the building blocks of the solver's incremental
:class:`~repro.core.rhe.SelectionState` and intentionally replay the exact
same arithmetic — same summation order, same division — so a delta-evaluated
selection scores **bit-identically** to a full rebuild.  Any change to a
measure must be applied to both twins.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from .groups import Group


def covered_positions(groups: Sequence[Group]) -> np.ndarray:
    """Union of the rating-tuple positions covered by a selection of groups."""
    if not groups:
        return np.array([], dtype=np.int64)
    return np.unique(np.concatenate([g.positions for g in groups]))


def coverage(groups: Sequence[Group], total: int) -> float:
    """Fraction of the input rating tuples covered by the selection."""
    if total <= 0:
        return 0.0
    return covered_positions(groups).shape[0] / total


def within_group_error(groups: Sequence[Group]) -> float:
    """Total within-group squared error Σ_g Σ_{t∈g} (s_t − mean_g)²."""
    return float(sum(g.error for g in groups))


def normalized_within_group_error(groups: Sequence[Group]) -> float:
    """Within-group error per covered rating tuple (size-weighted variance).

    Normalising by the number of covered tuples keeps the measure comparable
    across selections with different coverage, otherwise bigger selections
    would always look worse.
    """
    covered = sum(g.size for g in groups)
    if covered == 0:
        return 0.0
    return within_group_error(groups) / covered


def pairwise_disagreement(groups: Sequence[Group]) -> float:
    """Mean absolute difference between the average ratings of group pairs.

    This is the Diversity Mining signal: "groups of reviewers sharing
    dissimilar ratings on item(s)" — e.g. a group that hates the movie next to
    a group that loves it.
    """
    if len(groups) < 2:
        return 0.0
    deltas = [abs(a.mean - b.mean) for a, b in combinations(groups, 2)]
    return float(sum(deltas) / len(deltas))


def min_pairwise_disagreement(groups: Sequence[Group]) -> float:
    """Smallest pairwise gap — a stricter notion of 'consistently disagree'."""
    if len(groups) < 2:
        return 0.0
    return float(min(abs(a.mean - b.mean) for a, b in combinations(groups, 2)))


def similarity_objective(groups: Sequence[Group]) -> float:
    """Similarity Mining objective, *higher is better*.

    Defined as the negative per-tuple within-group error, so a selection of
    perfectly consistent groups scores 0 and noisier selections score below
    zero.  Using the negated error lets both mining tasks share a single
    "maximise the objective" solver interface.
    """
    if not groups:
        return float("-inf")
    return -normalized_within_group_error(groups)


def diversity_objective(groups: Sequence[Group], penalty: float = 0.25) -> float:
    """Diversity Mining objective, higher is better.

    Mean pairwise disagreement between the selected groups minus ``penalty``
    times the per-tuple within-group error: the selected groups must disagree
    with one another while each remaining internally consistent (§1's
    male-under-18 vs female-under-18 example).
    """
    if not groups:
        return float("-inf")
    return pairwise_disagreement(groups) - penalty * normalized_within_group_error(groups)


# -- scalar-stat twins (delta-evaluation building blocks) ------------------------


def coverage_from_count(covered: int, total: int) -> float:
    """Mirror of :func:`coverage` given a precomputed covered-position count."""
    if total <= 0:
        return 0.0
    return covered / total


def within_group_error_values(errors: Sequence[float]) -> float:
    """Mirror of :func:`within_group_error` on per-group error scalars."""
    return float(sum(errors))


def normalized_within_group_error_values(
    errors: Sequence[float], sizes: Sequence[int]
) -> float:
    """Mirror of :func:`normalized_within_group_error` on scalar stats."""
    covered = sum(sizes)
    if covered == 0:
        return 0.0
    return within_group_error_values(errors) / covered


def pairwise_disagreement_values(means: Sequence[float]) -> float:
    """Mirror of :func:`pairwise_disagreement` on per-group mean scalars."""
    if len(means) < 2:
        return 0.0
    deltas = [abs(a - b) for a, b in combinations(means, 2)]
    return float(sum(deltas) / len(deltas))


def similarity_objective_values(
    errors: Sequence[float], sizes: Sequence[int]
) -> float:
    """Mirror of :func:`similarity_objective` on scalar stats."""
    if not errors:
        return float("-inf")
    return -normalized_within_group_error_values(errors, sizes)


def diversity_objective_values(
    means: Sequence[float],
    errors: Sequence[float],
    sizes: Sequence[int],
    penalty: float = 0.25,
) -> float:
    """Mirror of :func:`diversity_objective` on scalar stats."""
    if not means:
        return float("-inf")
    return pairwise_disagreement_values(means) - penalty * (
        normalized_within_group_error_values(errors, sizes)
    )


def selection_summary(groups: Sequence[Group], total: int) -> dict:
    """Summary of a selection used in reports, benchmarks and EXPERIMENTS.md."""
    return {
        "num_groups": len(groups),
        "coverage": round(coverage(groups, total), 4),
        "within_group_error": round(within_group_error(groups), 4),
        "normalized_error": round(normalized_within_group_error(groups), 4),
        "pairwise_disagreement": round(pairwise_disagreement(groups), 4),
        "group_means": [round(g.mean, 3) for g in groups],
        "group_sizes": [g.size for g in groups],
    }
