"""Stateful exploration session: the interaction flow of §3 as an object.

The demo walkthrough is: type a query (Figure 1) → click *Explain Ratings* →
inspect the SM/DM tabs (Figure 2) → click a group for statistics and city
drill-down (Figure 3) → move the time slider.  :class:`ExplorationSession`
provides exactly those verbs so scripted examples, tests and the JSON API all
exercise the same flow a demo attendee would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import MiningConfig
from ..core.explanation import Explanation, GroupExplanation, MiningResult
from ..core.miner import RatingMiner
from ..data.model import Item, RatingDataset
from ..data.storage import RatingSlice
from ..errors import EmptyRatingSetError, ExplorationError, QueryError
from ..query.engine import ItemQuery, QueryEngine, TimeInterval
from .drilldown import CityAggregate, DrillDown
from .statistics import GroupStatistics, compare_groups, group_statistics
from .timeline import GroupTrendPoint, TimelineExplorer, TimelineSlice


@dataclass
class SessionState:
    """What the session currently has on screen."""

    query: Optional[ItemQuery] = None
    item_ids: Tuple[int, ...] = ()
    rating_slice: Optional[RatingSlice] = None
    result: Optional[MiningResult] = None
    selected_task: str = "similarity"
    selected_group_index: Optional[int] = None
    history: List[str] = field(default_factory=list)


class ExplorationSession:
    """One user's interactive exploration of a dataset."""

    def __init__(
        self,
        dataset: RatingDataset,
        config: Optional[MiningConfig] = None,
        miner: Optional[RatingMiner] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or MiningConfig()
        self.miner = miner or RatingMiner.for_dataset(dataset, self.config)
        self.engine = QueryEngine(dataset)
        self.timeline_explorer = TimelineExplorer(self.miner, self.config)
        self.state = SessionState()

    # -- step 1: search (Figure 1) --------------------------------------------------

    def search(
        self, query: str, time_interval: Optional[TimeInterval] = None
    ) -> List[Item]:
        """Evaluate the search box query and remember the matching items."""
        compiled = self.engine.compile(query, time_interval)
        items = self.engine.matching_items(compiled)
        if not items:
            raise QueryError(f"query {compiled.describe()!r} matches no items")
        self.state = SessionState(
            query=compiled,
            item_ids=tuple(sorted(item.item_id for item in items)),
            history=self.state.history + [f"search: {compiled.describe()}"],
        )
        return items

    # -- step 2: explain ratings (Figure 2) -------------------------------------------

    def explain(self, config: Optional[MiningConfig] = None) -> MiningResult:
        """Run SM + DM over the current item selection."""
        if not self.state.item_ids:
            raise ExplorationError("no items selected; call search() first")
        interval = (
            self.state.query.time_interval.as_tuple()
            if self.state.query and self.state.query.time_interval
            else None
        )
        result = self.miner.explain_items(
            list(self.state.item_ids),
            description=self.state.query.describe() if self.state.query else "",
            time_interval=interval,
            config=config or self.config,
        )
        self.state.result = result
        self.state.rating_slice = self.miner.slice_for_items(
            self.state.item_ids, time_interval=interval
        )
        self.state.history.append("explain ratings")
        return result

    def explain_query(
        self,
        query: str,
        time_interval: Optional[TimeInterval] = None,
        config: Optional[MiningConfig] = None,
    ) -> MiningResult:
        """Search and explain in a single call (what the demo button does)."""
        self.search(query, time_interval)
        return self.explain(config)

    # -- step 3: select a group and inspect it (Figure 3) ------------------------------

    def current_explanation(self, task: Optional[str] = None) -> Explanation:
        """The SM or DM interpretation currently displayed."""
        if self.state.result is None:
            raise ExplorationError("no mining result yet; call explain() first")
        return self.state.result.explanation_for(task or self.state.selected_task)

    def select_group(self, index: int, task: Optional[str] = None) -> GroupExplanation:
        """Click a group in the current interpretation tab."""
        explanation = self.current_explanation(task)
        if not 0 <= index < len(explanation.groups):
            raise ExplorationError(
                f"group index {index} out of range 0..{len(explanation.groups) - 1}"
            )
        if task:
            self.state.selected_task = task
        self.state.selected_group_index = index
        group = explanation.groups[index]
        self.state.history.append(f"select group: {group.label}")
        return group

    def group_statistics(self, index: Optional[int] = None, task: Optional[str] = None) -> GroupStatistics:
        """Detailed statistics of the selected (or indexed) group."""
        group = self._resolve_group(index, task)
        return group_statistics(self._require_slice(), group.pairs, label=group.label)

    def compare_selected_groups(self, task: Optional[str] = None) -> List[GroupStatistics]:
        """Side-by-side statistics of every group of the current interpretation."""
        explanation = self.current_explanation(task)
        return compare_groups(
            self._require_slice(),
            [g.pairs for g in explanation.groups],
            labels=[g.label for g in explanation.groups],
        )

    def drill_down(
        self, index: Optional[int] = None, task: Optional[str] = None, min_size: int = 1
    ) -> List[CityAggregate]:
        """City-level aggregates of the selected group (§3.1 drill-down)."""
        group = self._resolve_group(index, task)
        driller = DrillDown(self._require_slice(), min_size=min_size)
        self.state.history.append(f"drill down: {group.label}")
        return driller.drill(group.pairs)

    # -- step 4: the time slider -----------------------------------------------------

    def timeline(
        self, years: Optional[Sequence[int]] = None, min_ratings: int = 20
    ) -> List[TimelineSlice]:
        """Re-mine each year of the slider for the current item selection."""
        if not self.state.item_ids:
            raise ExplorationError("no items selected; call search() first")
        self.state.history.append("timeline")
        return self.timeline_explorer.interpretations_by_year(
            self.state.item_ids, years=years, min_ratings=min_ratings
        )

    def group_trend(
        self,
        index: Optional[int] = None,
        task: Optional[str] = None,
        years: Optional[Sequence[int]] = None,
    ) -> List[GroupTrendPoint]:
        """Average rating of the selected group per year."""
        group = self._resolve_group(index, task)
        return self.timeline_explorer.group_trend(
            self.state.item_ids, group.pairs, years=years
        )

    # -- internals ---------------------------------------------------------------------

    def _require_slice(self) -> RatingSlice:
        if self.state.rating_slice is None:
            raise ExplorationError("no rating slice yet; call explain() first")
        return self.state.rating_slice

    def _resolve_group(
        self, index: Optional[int], task: Optional[str]
    ) -> GroupExplanation:
        explanation = self.current_explanation(task)
        resolved_index = index if index is not None else self.state.selected_group_index
        if resolved_index is None:
            raise ExplorationError("no group selected; call select_group() first")
        if not 0 <= resolved_index < len(explanation.groups):
            raise ExplorationError(f"group index {resolved_index} out of range")
        return explanation.groups[resolved_index]

    def history(self) -> List[str]:
        """The interaction history of the session (useful in demos and tests)."""
        return list(self.state.history)
