"""Natural-language insights: one-sentence takeaways from an explanation.

The paper's goal is to let a user "quickly decide the desirability of an item"
without reading every review.  The structured explanation objects already carry
the numbers; this module turns them into the short sentences a demo presenter
would say out loud — which group to trust if you identify with it, how far the
groups disagree, and whether the overall average is misleading.

The insights are derived purely from the explanation/statistics objects, so
they also serve as a compact textual summary in reports and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.explanation import Explanation, MiningResult


@dataclass(frozen=True)
class Insight:
    """One takeaway sentence with the quantitative evidence behind it.

    Attributes:
        kind: short machine-readable category (``"consensus"``,
            ``"controversy"``, ``"hidden_structure"``, ``"coverage"``).
        sentence: the human-readable takeaway.
        evidence: the numbers backing the sentence (group labels, means, gaps).
    """

    kind: str
    sentence: str
    evidence: dict

    def to_dict(self) -> dict:
        return {"kind": self.kind, "sentence": self.sentence, "evidence": self.evidence}


def _best_and_worst(explanation: Explanation):
    groups = sorted(explanation.groups, key=lambda g: g.average_rating)
    return groups[0], groups[-1]


def similarity_insights(result: MiningResult) -> List[Insight]:
    """Takeaways from the Similarity Mining interpretation."""
    explanation = result.similarity
    if not explanation.groups:
        return []
    insights: List[Insight] = []
    worst, best = _best_and_worst(explanation)
    insights.append(
        Insight(
            kind="consensus",
            sentence=(
                f"If you identify with {best.label}, expect to like it: that group "
                f"averages {best.average_rating:.1f} over {best.size} ratings."
            ),
            evidence={"group": best.label, "average": best.average_rating, "size": best.size},
        )
    )
    if best.average_rating - worst.average_rating >= 0.5:
        insights.append(
            Insight(
                kind="hidden_structure",
                sentence=(
                    f"The overall average of {result.query.average_rating:.1f} hides a spread: "
                    f"{worst.label} average only {worst.average_rating:.1f} while "
                    f"{best.label} average {best.average_rating:.1f}."
                ),
                evidence={
                    "overall": result.query.average_rating,
                    "low_group": worst.label,
                    "low": worst.average_rating,
                    "high_group": best.label,
                    "high": best.average_rating,
                },
            )
        )
    insights.append(
        Insight(
            kind="coverage",
            sentence=(
                f"The {len(explanation.groups)} groups together describe "
                f"{explanation.coverage:.0%} of the {result.query.num_ratings} ratings."
            ),
            evidence={"coverage": explanation.coverage, "ratings": result.query.num_ratings},
        )
    )
    return insights


def diversity_insights(result: MiningResult) -> List[Insight]:
    """Takeaways from the Diversity Mining interpretation."""
    explanation = result.diversity
    if len(explanation.groups) < 2:
        return []
    worst, best = _best_and_worst(explanation)
    gap = best.average_rating - worst.average_rating
    insights = [
        Insight(
            kind="controversy",
            sentence=(
                f"Opinions split by {gap:.1f} points: {best.label} love it "
                f"({best.average_rating:.1f}) while {worst.label} do not "
                f"({worst.average_rating:.1f})."
            ),
            evidence={
                "gap": round(gap, 3),
                "high_group": best.label,
                "high": best.average_rating,
                "low_group": worst.label,
                "low": worst.average_rating,
            },
        )
    ]
    if gap >= 1.5:
        insights.append(
            Insight(
                kind="controversy",
                sentence="This item is controversial — check which side you identify with "
                "before trusting the overall average.",
                evidence={"gap": round(gap, 3)},
            )
        )
    return insights


def summarize(result: MiningResult, limit: int = 0) -> List[Insight]:
    """All insights of a mining result, most important first."""
    insights = similarity_insights(result) + diversity_insights(result)
    ordered = sorted(
        insights, key=lambda i: {"controversy": 0, "hidden_structure": 1, "consensus": 2, "coverage": 3}[i.kind]
    )
    return ordered[:limit] if limit else ordered


def render_insights(insights: Sequence[Insight]) -> str:
    """Plain-text bullet list of insights (used by the CLI and reports)."""
    if not insights:
        return "(no insights available)"
    return "\n".join(f"- {insight.sentence}" for insight in insights)
