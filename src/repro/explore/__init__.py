"""Interactive exploration: statistics, drill-down and the time dimension.

§2.3/§3.1: after the explanations are displayed, the user can click a group to
see "additional statistics about the group's rating", drill down from state to
city level aggregates, and move a time slider to watch the interpretations
evolve.  This package implements those interactions on top of the mining core:

* :mod:`repro.explore.statistics` — per-group rating statistics and group
  comparisons (the panel of Figure 3),
* :mod:`repro.explore.drilldown` — state ▸ city drill-down aggregates,
* :mod:`repro.explore.timeline` — time-sliced mining and per-group trends,
* :mod:`repro.explore.session` — a stateful exploration session stitching the
  query, mining and exploration steps together the way the web UI does.
"""

from .statistics import GroupStatistics, compare_groups, group_statistics
from .drilldown import CityAggregate, DrillDown
from .timeline import GroupTrendPoint, TimelineExplorer, TimelineSlice
from .session import ExplorationSession
from .insights import Insight, render_insights, summarize

__all__ = [
    "GroupStatistics",
    "compare_groups",
    "group_statistics",
    "CityAggregate",
    "DrillDown",
    "GroupTrendPoint",
    "TimelineExplorer",
    "TimelineSlice",
    "ExplorationSession",
    "Insight",
    "render_insights",
    "summarize",
]
