"""Temporal exploration: the time slider of Figure 1 and §3.1.

"Moving the time slider over the range of values allows the user to observe
reviewer groups that provide best interpretations for the movie and how they
change over time" and "navigation over time dimension allows a user to
understand the evolution of the reviewer rating pattern over a period of
time" (§2.3).

:class:`TimelineExplorer` supports both readings:

* :meth:`TimelineExplorer.interpretations_by_year` re-runs the mining for each
  time slice, so the user can watch the *returned groups* change, and
* :meth:`TimelineExplorer.group_trend` tracks the average rating of one fixed
  group across the slices, so the user can watch a *group's opinion* drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import MiningConfig
from ..core.explanation import MiningResult
from ..core.miner import RatingMiner
from ..errors import EmptyRatingSetError, ExplorationError, MiningError
from ..query.engine import TimeInterval
from .statistics import GroupStatistics, group_statistics


@dataclass(frozen=True)
class TimelineSlice:
    """The mining result of one time slice (one position of the slider)."""

    year: int
    interval: TimeInterval
    num_ratings: int
    result: Optional[MiningResult]

    def labels(self, task: str = "similarity") -> List[str]:
        if self.result is None:
            return []
        return self.result.explanation_for(task).labels()

    def to_dict(self) -> Dict[str, object]:
        return {
            "year": self.year,
            "interval": list(self.interval.as_tuple()),
            "num_ratings": self.num_ratings,
            "result": self.result.to_dict() if self.result else None,
        }


@dataclass(frozen=True)
class GroupTrendPoint:
    """Average rating of one fixed group in one time slice."""

    year: int
    statistics: GroupStatistics

    @property
    def mean(self) -> float:
        return self.statistics.mean

    @property
    def size(self) -> int:
        return self.statistics.size

    def to_dict(self) -> Dict[str, object]:
        return {"year": self.year, "statistics": self.statistics.to_dict()}


class TimelineExplorer:
    """Time-sliced mining and per-group trends over one item selection."""

    def __init__(self, miner: RatingMiner, config: Optional[MiningConfig] = None) -> None:
        self.miner = miner
        self.config = config or miner.config

    # -- helpers ------------------------------------------------------------------

    def available_years(self, item_ids: Sequence[int]) -> List[int]:
        """Calendar years that actually contain ratings for the item selection."""
        rating_slice = self.miner.store.slice_for_items(item_ids, allow_empty=True)
        return rating_slice.years()

    # -- interpretations per slice -----------------------------------------------

    def interpretations_by_year(
        self,
        item_ids: Sequence[int],
        years: Optional[Sequence[int]] = None,
        min_ratings: int = 20,
    ) -> List[TimelineSlice]:
        """Re-run SM + DM for each year of the slider.

        Slices with fewer than ``min_ratings`` ratings, or where no candidate
        group satisfies the constraints, yield a :class:`TimelineSlice` with
        ``result=None`` instead of failing the whole timeline.
        """
        years = list(years) if years is not None else self.available_years(item_ids)
        if not years:
            raise ExplorationError("the item selection has no rated years")
        slices: List[TimelineSlice] = []
        for year in years:
            interval = TimeInterval.for_year(year)
            rating_slice = self.miner.store.slice_for_items(
                item_ids, time_interval=interval.as_tuple(), allow_empty=True
            )
            result: Optional[MiningResult] = None
            if len(rating_slice) >= min_ratings:
                try:
                    result = self.miner.explain_items(
                        list(item_ids),
                        description=f"year {year}",
                        time_interval=interval.as_tuple(),
                        config=self.config,
                    )
                except (MiningError, EmptyRatingSetError):
                    result = None
            slices.append(
                TimelineSlice(
                    year=year,
                    interval=interval,
                    num_ratings=len(rating_slice),
                    result=result,
                )
            )
        return slices

    # -- per-group trend -------------------------------------------------------------

    def group_trend(
        self,
        item_ids: Sequence[int],
        pairs: Mapping[str, str],
        years: Optional[Sequence[int]] = None,
    ) -> List[GroupTrendPoint]:
        """Average rating of one fixed group for each year of the slider."""
        years = list(years) if years is not None else self.available_years(item_ids)
        if not years:
            raise ExplorationError("the item selection has no rated years")
        points: List[GroupTrendPoint] = []
        for year in years:
            interval = TimeInterval.for_year(year)
            rating_slice = self.miner.store.slice_for_items(
                item_ids, time_interval=interval.as_tuple(), allow_empty=True
            )
            if rating_slice.is_empty():
                continue
            points.append(
                GroupTrendPoint(
                    year=year, statistics=group_statistics(rating_slice, pairs)
                )
            )
        return points

    def overall_trend(
        self, item_ids: Sequence[int], years: Optional[Sequence[int]] = None
    ) -> List[GroupTrendPoint]:
        """Trend of the overall average rating (the all-reviewers group)."""
        return self.group_trend(item_ids, {}, years=years)

    @staticmethod
    def drift(points: Sequence[GroupTrendPoint]) -> float:
        """Difference between the last and first slice means (rating drift)."""
        if len(points) < 2:
            return 0.0
        return round(points[-1].mean - points[0].mean, 4)
