"""Per-group rating statistics: the exploration panel behind Figure 3.

Clicking a group in the explanation view shows "additional statistics about
the group's rating" and "a convenient way to compare the rating patterns of
related groups" (§3.1).  :func:`group_statistics` computes those numbers for
any describable group over any rating slice, and :func:`compare_groups` lines
several groups up side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..data.storage import RatingSlice
from ..errors import ExplorationError


@dataclass(frozen=True)
class GroupStatistics:
    """Detailed rating statistics of one reviewer group on one item selection.

    Attributes:
        label: human-readable group description.
        pairs: the attribute/value pairs defining the group.
        size: number of rating tuples.
        mean: average rating.
        std: standard deviation of the ratings.
        median: median rating.
        histogram: count of ratings per integer score.
        share_positive: fraction of ratings ≥ 4 ("loves it").
        share_negative: fraction of ratings ≤ 2 ("hates it").
        coverage: fraction of the input rating tuples in this group.
        lift: group mean minus the overall mean of the input ratings.
    """

    label: str
    pairs: Mapping[str, str]
    size: int
    mean: float
    std: float
    median: float
    histogram: Mapping[int, int]
    share_positive: float
    share_negative: float
    coverage: float
    lift: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "pairs": dict(self.pairs),
            "size": self.size,
            "mean": self.mean,
            "std": self.std,
            "median": self.median,
            "histogram": {str(k): v for k, v in sorted(self.histogram.items())},
            "share_positive": self.share_positive,
            "share_negative": self.share_negative,
            "coverage": self.coverage,
            "lift": self.lift,
        }


def _mask_for_pairs(rating_slice: RatingSlice, pairs: Mapping[str, str]) -> np.ndarray:
    """Boolean mask of the slice tuples whose reviewer matches every pair."""
    mask = np.ones(len(rating_slice), dtype=bool)
    for attribute, value in pairs.items():
        mask &= rating_slice.mask_for(attribute, value)
    return mask


def group_statistics(
    rating_slice: RatingSlice,
    pairs: Mapping[str, str],
    label: str = "",
) -> GroupStatistics:
    """Compute the Figure-3 statistics of one group over one rating slice.

    Args:
        rating_slice: the rating tuples of the current item selection.
        pairs: attribute/value pairs describing the group (may be empty, which
            yields statistics of all reviewers).
        label: display label; defaults to the pair list.

    Raises:
        ExplorationError: when the slice is empty.
    """
    if rating_slice.is_empty():
        raise ExplorationError("cannot compute statistics over an empty rating slice")
    mask = _mask_for_pairs(rating_slice, pairs)
    scores = rating_slice.scores[mask]
    size = int(scores.shape[0])
    overall_mean = float(rating_slice.scores.mean())
    if size == 0:
        return GroupStatistics(
            label=label or ", ".join(f"{k}={v}" for k, v in pairs.items()) or "all reviewers",
            pairs=dict(pairs),
            size=0,
            mean=0.0,
            std=0.0,
            median=0.0,
            histogram={},
            share_positive=0.0,
            share_negative=0.0,
            coverage=0.0,
            lift=0.0,
        )
    histogram: Dict[int, int] = {}
    for score in scores.tolist():
        key = int(round(score))
        histogram[key] = histogram.get(key, 0) + 1
    mean = float(scores.mean())
    return GroupStatistics(
        label=label or ", ".join(f"{k}={v}" for k, v in pairs.items()) or "all reviewers",
        pairs=dict(pairs),
        size=size,
        mean=round(mean, 4),
        std=round(float(scores.std()), 4),
        median=round(float(np.median(scores)), 4),
        histogram=histogram,
        share_positive=round(float((scores >= 4).mean()), 4),
        share_negative=round(float((scores <= 2).mean()), 4),
        coverage=round(size / len(rating_slice), 4),
        lift=round(mean - overall_mean, 4),
    )


def compare_groups(
    rating_slice: RatingSlice,
    groups: Sequence[Mapping[str, str]],
    labels: Optional[Sequence[str]] = None,
) -> List[GroupStatistics]:
    """Statistics of several groups over the same slice, for side-by-side display.

    The first entry is always the "all reviewers" baseline so that every group
    can be read against the overall aggregate the paper criticises.
    """
    labels = list(labels) if labels is not None else ["" for _ in groups]
    if len(labels) != len(groups):
        raise ExplorationError("labels and groups must have the same length")
    results = [group_statistics(rating_slice, {}, label="all reviewers")]
    for pairs, label in zip(groups, labels):
        results.append(group_statistics(rating_slice, pairs, label=label))
    return results


def related_groups(pairs: Mapping[str, str]) -> List[Dict[str, str]]:
    """Generalisations of a group obtained by dropping one pair at a time.

    These are the "related groups" a user naturally compares against when
    exploring: e.g. for male reviewers from California, the related groups are
    all reviewers from California and all male reviewers.
    """
    related: List[Dict[str, str]] = []
    for attribute in pairs:
        reduced = {k: v for k, v in pairs.items() if k != attribute}
        if reduced:
            related.append(reduced)
    return related
