"""Geographic drill-down: from state-level groups to city-level aggregates.

§2.3: "the system also allows a user to drill deeper and view lower level
aggregate statistics.  For example, if the original geo condition was over a
state, the drill down provides city level statistics."  §3.1 repeats the same
interaction for the demo.

:class:`DrillDown` takes the rating slice of the current query plus the
attribute pairs of a selected group and produces one aggregate per child
location (cities of the group's state, or states of the whole country when the
group has no geo condition yet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..config import GEO_ATTRIBUTE
from ..data.storage import RatingSlice
from ..errors import ExplorationError
from ..geo.hierarchy import LocationHierarchy, LocationLevel
from .statistics import GroupStatistics, group_statistics


@dataclass(frozen=True)
class CityAggregate:
    """One drill-down row: the selected group restricted to a child location.

    Attributes:
        location: the child location (a city, or a state when drilling from
            the whole country).
        level: hierarchy level of the child location.
        statistics: full rating statistics of the restricted group.
    """

    location: str
    level: LocationLevel
    statistics: GroupStatistics

    def to_dict(self) -> Dict[str, object]:
        return {
            "location": self.location,
            "level": self.level.value,
            "statistics": self.statistics.to_dict(),
        }


class DrillDown:
    """Drill a group's geo condition one level down over a rating slice."""

    def __init__(
        self,
        rating_slice: RatingSlice,
        hierarchy: Optional[LocationHierarchy] = None,
        min_size: int = 1,
    ) -> None:
        if min_size < 1:
            raise ExplorationError("min_size must be at least 1")
        self.rating_slice = rating_slice
        self.hierarchy = hierarchy or LocationHierarchy()
        self.min_size = min_size

    # -- public API -------------------------------------------------------------

    def drill(self, pairs: Mapping[str, str]) -> List[CityAggregate]:
        """Return child-location aggregates for the group described by ``pairs``.

        * A group with a ``state`` condition drills into the cities of that
          state (keeping all other pairs fixed).
        * A group without any geo condition drills into states.
        * A group already at city level cannot be drilled further.
        """
        pairs = dict(pairs)
        if "city" in pairs:
            raise ExplorationError("the group is already at city level")
        if GEO_ATTRIBUTE in pairs:
            state = pairs[GEO_ATTRIBUTE]
            children = self.hierarchy.cities_of(state)
            level = LocationLevel.CITY
            child_attribute = "city"
        else:
            children = self.hierarchy.children(LocationLevel.COUNTRY)
            level = LocationLevel.STATE
            child_attribute = GEO_ATTRIBUTE
        aggregates: List[CityAggregate] = []
        for child in children:
            child_pairs = dict(pairs)
            child_pairs[child_attribute] = child
            stats = group_statistics(self.rating_slice, child_pairs)
            if stats.size < self.min_size:
                continue
            aggregates.append(CityAggregate(location=child, level=level, statistics=stats))
        aggregates.sort(key=lambda agg: (-agg.statistics.size, agg.location))
        return aggregates

    def drill_state(self, state: str, pairs: Optional[Mapping[str, str]] = None) -> List[CityAggregate]:
        """Convenience: city aggregates of one state for a (possibly empty) group."""
        merged = dict(pairs or {})
        merged[GEO_ATTRIBUTE] = state
        return self.drill(merged)

    def roll_up(self, pairs: Mapping[str, str]) -> GroupStatistics:
        """Inverse operation: statistics of the group one geo level coarser."""
        pairs = dict(pairs)
        if "city" in pairs:
            pairs.pop("city")
        elif GEO_ATTRIBUTE in pairs:
            pairs.pop(GEO_ATTRIBUTE)
        else:
            raise ExplorationError("the group has no geo condition to roll up")
        return group_statistics(self.rating_slice, pairs)
