"""Live ingestion: epoch-versioned appendable stores with incremental compaction.

Every layer above this module was built for a *frozen*
:class:`~repro.data.storage.RatingStore`; real collaborative rating sites
never stop receiving ratings.  This module supplies the HTAP-style split
between the write path and the read-optimized mining path:

* :class:`AppendBuffer` — the write side.  Accepts new ratings (single and
  batch) and new reviewers, validates them against the current snapshot
  (referential integrity, rating scale, duplicate suppression) and holds them
  in memory.  Unseen attribute values — a new zip code, a reviewer in a state
  the snapshot never saw — are perfectly legal: the vocabulary grows at
  compaction time.
* :func:`compact_snapshot` — the merge step.  Folds the buffered rows into a
  **new immutable snapshot** tagged with ``epoch + 1``.  The incremental path
  never re-runs the full pre-processing: base arrays are extended by
  concatenation, grown vocabularies are merged with a vectorised remap of the
  existing code columns (``remap[old_codes]`` — no string comparison touches
  an old row), the per-item inverted index receives per-item position
  appends, and every built :class:`~repro.data.storage.AttributeIndex`
  (per-region aggregates + packed bitsets) is carried forward via delta
  bincounts.  A from-scratch rebuild (``use_incremental=False``) is kept as
  the reference path; the differential test battery proves the two produce
  bit-identical stores and downstream mining/geo results.
* :class:`LiveStore` — the epoch manager.  Owns the current snapshot (an
  atomically swapped reference) plus the buffer; readers grab the snapshot
  once per request and are never blocked by writers, writers append without
  touching the snapshot, and :meth:`LiveStore.compact` serialises compactions
  while ingestion continues into a fresh buffer.

The serving layer (:class:`~repro.server.api.MapRat`) wires the epoch into
every canonical cache key, so entries of superseded snapshots can never serve
a post-ingest read.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import IngestError, MapRatError
from ..geo.zipcodes import ZipResolver
from .lattice import CuboidLattice
from .model import Rating, RatingDataset, Reviewer
from .storage import AttributeIndex, RatingStore

__all__ = [
    "AppendBuffer",
    "CompactionDelta",
    "CompactionResult",
    "LiveStore",
    "compact_snapshot",
    "rating_from_dict",
    "reviewer_from_dict",
]

#: Outcomes of one append.
ACCEPTED = "accepted"
DUPLICATE = "duplicate"


def _rating_key(rating: Rating) -> Tuple[int, int, float, int]:
    return (rating.item_id, rating.reviewer_id, float(rating.score), rating.timestamp)


def rating_from_dict(payload: Mapping) -> Rating:
    """Parse one ingest payload entry into a :class:`Rating`.

    Required keys: ``item_id``, ``reviewer_id``, ``score``; optional
    ``timestamp`` (default 0).  Raises :class:`IngestError` on missing or
    malformed fields — the JSON layer maps that to a 400.
    """
    if not isinstance(payload, Mapping):
        raise IngestError(f"rating entry must be an object, got {type(payload).__name__}")
    try:
        item_id = int(payload["item_id"])
        reviewer_id = int(payload["reviewer_id"])
        score = float(payload["score"])
    except KeyError as exc:
        raise IngestError(f"rating entry is missing required field {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise IngestError(f"malformed rating entry: {exc}") from exc
    try:
        timestamp = int(payload.get("timestamp", 0))
    except (TypeError, ValueError) as exc:
        raise IngestError("rating timestamp must be an integer") from exc
    return Rating(item_id=item_id, reviewer_id=reviewer_id, score=score, timestamp=timestamp)


def reviewer_from_dict(payload: Mapping, reviewer_id: Optional[int] = None) -> Reviewer:
    """Parse a new-reviewer payload into a :class:`Reviewer`.

    Required keys: ``gender``, ``age``, ``occupation``, ``zipcode`` (plus
    ``reviewer_id`` unless supplied by the caller).  ``state``/``city`` are
    optional; blank values are resolved from the zip code at registration.
    """
    if not isinstance(payload, Mapping):
        raise IngestError(f"reviewer entry must be an object, got {type(payload).__name__}")
    try:
        rid = int(payload.get("reviewer_id", reviewer_id))
        gender = str(payload["gender"])
        age = int(payload["age"])
        occupation = str(payload["occupation"])
        zipcode = str(payload["zipcode"])
    except KeyError as exc:
        raise IngestError(
            f"reviewer entry is missing required field {exc.args[0]!r}"
        ) from exc
    except (TypeError, ValueError) as exc:
        raise IngestError(f"malformed reviewer entry: {exc}") from exc
    return Reviewer(
        reviewer_id=rid,
        gender=gender,
        age=age,
        occupation=occupation,
        zipcode=zipcode,
        state=str(payload.get("state", "")),
        city=str(payload.get("city", "")),
    )


class AppendBuffer:
    """Validated, deduplicated in-memory buffer of ratings awaiting compaction.

    The buffer is the write side of the live store: every append is validated
    against the owning snapshot (known item, known or newly registered
    reviewer, score on the site's scale) and against everything already seen
    (exact ⟨item, reviewer, score, timestamp⟩ duplicates are absorbed, never
    stored twice).  All operations are thread-safe; ``drain()`` hands the
    pending rows to the compactor while later appends keep accumulating for
    the next epoch.

    Vocabulary growth is deliberately *not* validated away: a reviewer with a
    zip code, city or occupation the snapshot has never seen is accepted and
    the attribute vocabularies grow at compaction time.
    """

    def __init__(self, snapshot: RatingStore, journal=None) -> None:
        self._dataset = snapshot.dataset
        self._schema = snapshot.dataset.schema
        self._resolver = ZipResolver()
        self._journal = journal
        self._lock = threading.RLock()
        self._pending: List[Rating] = []
        self._pending_reviewers: Dict[int, Reviewer] = {}
        self._known_reviewer_ids: Set[int] = {
            reviewer.reviewer_id for reviewer in self._dataset.reviewers()
        }
        # Duplicate suppression is O(ratings-per-item) per append, with no
        # standing memory: snapshot rows are probed through the per-item
        # inverted index, and only the keys of rows not yet in a snapshot
        # (pending, or drained into an in-flight compaction) are held.
        self._pending_keys: Set[Tuple[int, int, float, int]] = set()
        self._draining_keys: Set[Tuple[int, int, float, int]] = set()
        self._snapshot = snapshot

    # -- internals -----------------------------------------------------------------

    def _is_duplicate(self, key: Tuple[int, int, float, int]) -> bool:
        """True when the exact rating already exists anywhere on the path.

        Checks the two small in-memory sets first, then the snapshot via its
        per-item index — a vectorised comparison over just that item's rows,
        never a full-store scan or a materialised key set.
        """
        if key in self._pending_keys or key in self._draining_keys:
            return True
        store = self._snapshot
        positions = store._positions_by_item.get(key[0])
        if positions is None or positions.shape[0] == 0:
            return False
        return bool(
            (
                (store._reviewer_ids[positions] == key[1])
                & (store._scores[positions] == key[2])
                & (store._timestamps[positions] == key[3])
            ).any()
        )

    def _resolve_reviewer(self, reviewer: Reviewer) -> Reviewer:
        """Validate a new-reviewer record and fill its location (no mutation)."""
        if reviewer.reviewer_id in self._known_reviewer_ids:
            raise IngestError(
                f"reviewer {reviewer.reviewer_id} already exists; "
                "omit the reviewer record when rating as an existing reviewer"
            )
        if not reviewer.state or not reviewer.city:
            state, city = self._resolver.resolve(reviewer.zipcode)
            reviewer = Reviewer(
                reviewer_id=reviewer.reviewer_id,
                gender=reviewer.gender,
                age=reviewer.age,
                occupation=reviewer.occupation,
                zipcode=reviewer.zipcode,
                state=reviewer.state or state,
                city=reviewer.city or city,
            )
        return reviewer

    def _admit_reviewer(self, reviewer: Reviewer) -> None:
        """Register an already-resolved new reviewer (mutation half)."""
        self._pending_reviewers[reviewer.reviewer_id] = reviewer
        self._known_reviewer_ids.add(reviewer.reviewer_id)

    def set_journal(self, journal) -> None:
        """Attach the write-ahead journal callback after construction.

        The recovery path builds the buffer first (replaying logged ops must
        not re-log them) and attaches the journal once the on-disk state is
        reconciled.  ``journal`` is called as ``journal(rating, reviewer)``
        under the buffer lock, after validation and before any state mutates,
        for every accepted append.
        """
        with self._lock:
            self._journal = journal

    # -- writes --------------------------------------------------------------------

    def append(self, rating: Rating, reviewer: Optional[Reviewer] = None) -> str:
        """Validate and buffer one rating; returns ``"accepted"``/``"duplicate"``.

        Args:
            rating: the new rating triple (plus timestamp).
            reviewer: a reviewer record for a rater the snapshot does not
                know yet.  Required exactly when ``rating.reviewer_id`` is
                unknown; supplying a record for an existing id is an error.

        Appends are atomic: every validation (and the journal write, when a
        journal is attached) happens before any buffer state mutates, so a
        rejected append leaves no trace — no half-registered reviewer, no
        logged-but-unbuffered row.
        """
        with self._lock:
            if not self._dataset.has_item(rating.item_id):
                raise IngestError(
                    f"rating references unknown item {rating.item_id}; "
                    "the item catalogue is fixed — ingest accepts ratings, not items"
                )
            if reviewer is not None:
                if reviewer.reviewer_id != rating.reviewer_id:
                    raise IngestError(
                        f"reviewer record id {reviewer.reviewer_id} does not match "
                        f"rating reviewer {rating.reviewer_id}"
                    )
                reviewer = self._resolve_reviewer(reviewer)
            elif rating.reviewer_id not in self._known_reviewer_ids:
                raise IngestError(
                    f"rating references unknown reviewer {rating.reviewer_id}; "
                    "supply a reviewer record (gender/age/occupation/zipcode) to register one"
                )
            try:
                self._schema.validate_rating(rating.score)
            except MapRatError as exc:
                raise IngestError(str(exc)) from exc
            key = _rating_key(rating)
            if self._is_duplicate(key):
                return DUPLICATE
            if self._journal is not None:
                # Write-ahead: the op reaches the log before the buffer; a
                # failed log write rejects the append with no state change.
                self._journal(rating, reviewer)
            if reviewer is not None:
                self._admit_reviewer(reviewer)
            self._pending_keys.add(key)
            self._pending.append(rating)
            return ACCEPTED

    def extend(
        self,
        pairs: Iterable[Tuple[Rating, Optional[Reviewer]]],
    ) -> Dict[str, int]:
        """Append a batch of (rating, optional reviewer) pairs.

        Entries are applied in order; the first invalid entry raises
        :class:`IngestError` naming its index, with every earlier entry
        already buffered (best-effort semantics, surfaced to the caller).
        The raised error carries the partial outcome as ``error.counts`` so
        callers tracking totals never lose the buffered prefix.
        """
        counts = {ACCEPTED: 0, DUPLICATE: 0}
        with self._lock:
            for index, (rating, reviewer) in enumerate(pairs):
                try:
                    counts[self.append(rating, reviewer)] += 1
                except IngestError as exc:
                    error = IngestError(f"batch entry {index}: {exc}")
                    error.counts = dict(counts)
                    raise error from exc
        return counts

    # -- handoff -------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def pending_reviewers(self) -> int:
        """Number of buffered new-reviewer registrations."""
        with self._lock:
            return len(self._pending_reviewers)

    def drain(self, on_drain=None) -> Tuple[List[Rating], List[Reviewer]]:
        """Take the pending rows for compaction; the buffer keeps accepting.

        The drained rows' keys move to the draining set (they are about to
        become snapshot rows but are not probeable through the snapshot yet)
        and their reviewers remain known, so duplicates of in-flight rows
        are still absorbed.

        ``on_drain`` (when given) runs under the buffer lock, only when the
        drain took something.  The durability layer rotates the write-ahead
        log there: rotation must be atomic with the drain so an append racing
        the compaction lands in the *new* log — its row belongs to the next
        epoch's delta, never to the one being sealed.
        """
        with self._lock:
            ratings, self._pending = self._pending, []
            reviewers = list(self._pending_reviewers.values())
            self._pending_reviewers = {}
            self._draining_keys |= self._pending_keys
            self._pending_keys = set()
            if on_drain is not None and (ratings or reviewers):
                on_drain()
            return ratings, reviewers

    def rebase(self, snapshot: RatingStore) -> None:
        """Point validation at the new snapshot after a compaction.

        The drained keys are now snapshot rows reachable through the
        per-item index, so the draining set is released.
        """
        with self._lock:
            self._snapshot = snapshot
            self._dataset = snapshot.dataset
            self._schema = snapshot.dataset.schema
            self._draining_keys = set()


@dataclass(frozen=True)
class CompactionDelta:
    """What one compaction appended — the invalidation currency of the serving
    layer (which anchors to re-warm, which cache entries to carry forward).

    Attributes:
        num_rows: appended rating tuples.
        num_reviewers: newly registered reviewers.
        touched_items: item ids that received new ratings.
        touched_regions: state codes whose aggregates changed.
        vocabulary_growth: per-attribute count of values unseen at the
            previous epoch (the frozen-vocabulary assumption this subsystem
            removes).
    """

    num_rows: int
    num_reviewers: int
    touched_items: frozenset
    touched_regions: frozenset
    vocabulary_growth: Mapping[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The delta as a JSON-ready dict (sorted ids, non-zero growth only)."""
        return {
            "num_rows": self.num_rows,
            "num_reviewers": self.num_reviewers,
            "touched_items": sorted(self.touched_items),
            "touched_regions": sorted(self.touched_regions),
            "vocabulary_growth": {
                name: count for name, count in sorted(self.vocabulary_growth.items()) if count
            },
        }


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of one :meth:`LiveStore.compact` call."""

    store: RatingStore
    delta: Optional[CompactionDelta]
    previous_epoch: int
    epoch: int
    mode: str  # "incremental" | "rebuild" | "noop"
    elapsed_seconds: float = 0.0

    @property
    def compacted(self) -> bool:
        """True when a new snapshot was produced (the buffer was non-empty)."""
        return self.delta is not None

    def to_dict(self) -> dict:
        """The outcome as a JSON-ready dict (the ``compact`` endpoint payload)."""
        return {
            "previous_epoch": self.previous_epoch,
            "epoch": self.epoch,
            "mode": self.mode,
            "rows": len(self.store),
            "delta": self.delta.to_dict() if self.delta is not None else None,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }


def _merged_dataset(
    dataset: RatingDataset,
    ratings: Sequence[Rating],
    reviewers: Sequence[Reviewer],
) -> RatingDataset:
    """The previous dataset plus the appended rows, in append order."""
    return RatingDataset(
        reviewers=list(dataset.reviewers()) + list(reviewers),
        items=list(dataset.items()),
        ratings=list(dataset.ratings()) + list(ratings),
        schema=dataset.schema,
        name=dataset.name,
        validate=False,  # the buffer already validated every appended row
    )


def _merge_vocabulary(
    old_vocabulary: np.ndarray, candidate_values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Merge unseen values into a sorted vocabulary.

    Returns ``(merged_vocabulary, remap, unseen_count)`` where
    ``remap[old_code] -> new_code``.  ``merged_vocabulary`` equals what a
    from-scratch ``np.unique`` over the full column would produce, and the
    remap is computed without comparing a single existing row: each old code
    shifts by the number of unseen values sorting before it.
    """
    candidates = np.unique(candidate_values) if candidate_values.shape[0] else candidate_values
    if old_vocabulary.shape[0] == 0:
        merged = candidates
        return merged, np.arange(0, dtype=np.int64), int(candidates.shape[0])
    if candidates.shape[0]:
        slots = np.searchsorted(old_vocabulary, candidates)
        clipped = np.minimum(slots, old_vocabulary.shape[0] - 1)
        unseen = candidates[
            (slots >= old_vocabulary.shape[0]) | (old_vocabulary[clipped] != candidates)
        ]
    else:
        unseen = candidates
    if unseen.shape[0] == 0:
        return old_vocabulary, np.arange(old_vocabulary.shape[0], dtype=np.int64), 0
    merged = np.unique(np.concatenate([old_vocabulary, unseen]))
    remap = (
        np.arange(old_vocabulary.shape[0], dtype=np.int64)
        + np.searchsorted(unseen, old_vocabulary)
    )
    return merged, remap, int(unseen.shape[0])


def compact_snapshot(
    snapshot: RatingStore,
    ratings: Sequence[Rating],
    reviewers: Sequence[Reviewer] = (),
    use_incremental: bool = True,
) -> Tuple[RatingStore, CompactionDelta]:
    """Fold buffered rows into a new immutable snapshot at ``epoch + 1``.

    The incremental path (default) performs pure delta maintenance:

    * base arrays (item ids, reviewer ids, scores, timestamps) are extended
      by concatenation — existing rows are never copied element-wise,
    * per-attribute vocabularies are merged via :func:`_merge_vocabulary` and
      existing code columns re-homed with one vectorised gather,
    * the per-item inverted index receives appends only for touched items,
    * every :class:`~repro.data.storage.AttributeIndex` already built on the
      old snapshot is delta-updated (scatter + delta bincounts + bitset
      extension) instead of rebuilt,
    * an attached :class:`~repro.data.lattice.CuboidLattice` is carried
      forward the same way — per-cuboid delta merges driven by the very
      remaps and delta code columns computed for the indexes.

    ``use_incremental=False`` rebuilds the store from the merged dataset —
    the reference the differential battery compares against (the lattice is
    rebuilt from scratch on that path too, when the old snapshot carried one).
    """
    dataset = _merged_dataset(snapshot.dataset, ratings, reviewers)
    reviewer_lookup = {reviewer.reviewer_id: reviewer for reviewer in reviewers}

    def reviewer_of(reviewer_id: int) -> Reviewer:
        record = reviewer_lookup.get(reviewer_id)
        return record if record is not None else snapshot.dataset.reviewer(reviewer_id)

    touched_items = frozenset(rating.item_id for rating in ratings)
    touched_regions = frozenset(
        region
        for region in (reviewer_of(r.reviewer_id).attribute("state") for r in ratings)
        if region
    )

    if not use_incremental:
        store = RatingStore(
            dataset,
            grouping_attributes=snapshot.grouping_attributes,
            epoch=snapshot.epoch + 1,
        )
        old_lattice = snapshot.lattice()
        if old_lattice is not None:
            store.attach_lattice(
                CuboidLattice.build(
                    store,
                    attributes=old_lattice.attributes,
                    max_arity=old_lattice.max_arity,
                    region_attribute=old_lattice.region_attribute,
                )
            )
        growth = {
            name: int(store.vocabulary_for(name).shape[0])
            - int(snapshot.vocabulary_for(name).shape[0])
            for name in snapshot.grouping_attributes
        }
        delta = CompactionDelta(
            num_rows=len(ratings),
            num_reviewers=len(reviewers),
            touched_items=touched_items,
            touched_regions=touched_regions,
            vocabulary_growth=growth,
        )
        return store, delta

    base_rows = len(snapshot)
    delta_item_ids = np.array([r.item_id for r in ratings], dtype=np.int64)
    delta_reviewer_ids = np.array([r.reviewer_id for r in ratings], dtype=np.int64)
    delta_scores = np.array([r.score for r in ratings], dtype=np.float64)
    delta_timestamps = np.array([r.timestamp for r in ratings], dtype=np.int64)

    item_ids = np.concatenate([snapshot._item_ids, delta_item_ids])
    reviewer_ids = np.concatenate([snapshot._reviewer_ids, delta_reviewer_ids])
    scores = np.concatenate([snapshot._scores, delta_scores])
    timestamps = np.concatenate([snapshot._timestamps, delta_timestamps])

    # Vocabulary merge + code-column extension, one attribute at a time.  The
    # candidate values feeding the merge are the delta rows *plus* every new
    # reviewer's value: a from-scratch build factorises over reviewers, so a
    # registered reviewer contributes vocabulary even before rating anything.
    attribute_codes: Dict[str, np.ndarray] = {}
    vocabularies: Dict[str, np.ndarray] = {}
    remaps: Dict[str, np.ndarray] = {}
    growth: Dict[str, int] = {}
    delta_code_columns: Dict[str, np.ndarray] = {}
    delta_raters = [reviewer_of(r.reviewer_id) for r in ratings]
    for name in snapshot.grouping_attributes:
        row_values = np.array(
            [rater.attribute(name) for rater in delta_raters], dtype=object
        )
        reviewer_values = np.array(
            [reviewer.attribute(name) for reviewer in reviewers], dtype=object
        )
        candidates = (
            np.concatenate([row_values, reviewer_values])
            if reviewer_values.shape[0]
            else row_values
        )
        old_vocabulary = snapshot.vocabulary_for(name)
        merged, remap, unseen = _merge_vocabulary(old_vocabulary, candidates)
        delta_codes = (
            np.searchsorted(merged, row_values).astype(np.int32)
            if row_values.shape[0]
            else np.array([], dtype=np.int32)
        )
        old_codes = snapshot.codes_for(name)
        if unseen and old_codes.shape[0]:
            rehomed = remap.astype(np.int32)[old_codes]
        else:
            rehomed = old_codes
        attribute_codes[name] = np.concatenate([rehomed, delta_codes])
        vocabularies[name] = merged
        remaps[name] = remap
        growth[name] = unseen
        delta_code_columns[name] = delta_codes

    # Per-item inverted index: append positions for touched items only.
    positions_by_item = dict(snapshot._positions_by_item)
    if delta_item_ids.shape[0]:
        order = np.argsort(delta_item_ids, kind="stable")
        sorted_items = delta_item_ids[order]
        unique_items, starts = np.unique(sorted_items, return_index=True)
        for item_id, segment in zip(
            unique_items.tolist(), np.split(order, starts[1:])
        ):
            appended = (segment + base_rows).astype(np.int64)
            existing = positions_by_item.get(int(item_id))
            positions_by_item[int(item_id)] = (
                appended if existing is None else np.concatenate([existing, appended])
            )

    # Delta-update every attribute index the old snapshot had built.
    indexes: Dict[str, AttributeIndex] = {}
    for name, index in snapshot.built_indexes().items():
        indexes[name] = index.updated(
            remaps[name],
            int(vocabularies[name].shape[0]),
            delta_code_columns[name].astype(np.int64),
            delta_scores,
        )

    # Delta-merge the cuboid lattice with the same remaps and delta columns.
    old_lattice = snapshot.lattice()
    lattice = (
        old_lattice.updated(
            remaps,
            {name: int(vocab.shape[0]) for name, vocab in vocabularies.items()},
            {
                name: codes.astype(np.int64)
                for name, codes in delta_code_columns.items()
            },
            delta_scores,
            epoch=snapshot.epoch + 1,
        )
        if old_lattice is not None
        else None
    )

    store = RatingStore._from_parts(
        dataset=dataset,
        grouping_attributes=snapshot.grouping_attributes,
        item_ids=item_ids,
        reviewer_ids=reviewer_ids,
        scores=scores,
        timestamps=timestamps,
        positions_by_item=positions_by_item,
        attribute_codes=attribute_codes,
        vocabularies=vocabularies,
        epoch=snapshot.epoch + 1,
        indexes=indexes,
        lattice=lattice,
    )
    delta = CompactionDelta(
        num_rows=len(ratings),
        num_reviewers=len(reviewers),
        touched_items=touched_items,
        touched_regions=touched_regions,
        vocabulary_growth=growth,
    )
    return store, delta


class LiveStore:
    """Epoch manager over one appendable rating store.

    Readers call :attr:`snapshot` once per request and operate on an
    immutable store; the reference swap at the end of a compaction is a
    single atomic assignment, so no reader ever observes a half-built store
    and no request blocks on a write.  Writers append through the buffer
    without touching the snapshot.  Compactions are serialised by a lock but
    run outside the buffer lock, so ingestion continues (into the next
    epoch's buffer) while one is in flight.
    """

    def __init__(
        self,
        snapshot: RatingStore,
        auto_compact_threshold: int = 0,
        use_incremental: bool = True,
        journal=None,
    ) -> None:
        if auto_compact_threshold < 0:
            raise IngestError("auto_compact_threshold must be non-negative")
        self._snapshot = snapshot
        self.journal = journal
        self.buffer = AppendBuffer(
            snapshot, journal=journal.log_append if journal is not None else None
        )
        self.auto_compact_threshold = int(auto_compact_threshold)
        self.use_incremental = use_incremental
        self._compact_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.accepted_total = 0
        self.duplicates_total = 0
        self.compactions = 0
        self.last_compaction: Optional[dict] = None

    # -- read side -----------------------------------------------------------------

    @property
    def snapshot(self) -> RatingStore:
        """The current immutable snapshot (grab once per request)."""
        return self._snapshot

    @property
    def epoch(self) -> int:
        """Epoch of the current snapshot."""
        return self._snapshot.epoch

    @property
    def pending(self) -> int:
        """Buffered rows plus reviewer registrations awaiting compaction."""
        return len(self.buffer) + self.buffer.pending_reviewers

    # -- write side ----------------------------------------------------------------

    def attach_journal(self, journal) -> None:
        """Wire a durability journal into the store and its buffer.

        Used by recovery, which replays logged ops through a journal-less
        store (replay must not re-log) and attaches the journal afterwards.
        """
        self.journal = journal
        self.buffer.set_journal(journal.log_append if journal is not None else None)

    def ingest(self, rating: Rating, reviewer: Optional[Reviewer] = None) -> str:
        """Buffer one rating; returns ``"accepted"`` or ``"duplicate"``."""
        try:
            outcome = self.buffer.append(rating, reviewer)
        finally:
            if self.journal is not None:
                self.journal.commit()
        with self._stats_lock:
            if outcome == ACCEPTED:
                self.accepted_total += 1
            else:
                self.duplicates_total += 1
        return outcome

    def ingest_batch(
        self, pairs: Sequence[Tuple[Rating, Optional[Reviewer]]]
    ) -> Dict[str, int]:
        """Buffer a batch; returns ``{"accepted": n, "duplicate": m}``.

        A failing entry aborts the batch (the error names its index) but the
        entries buffered before it are still counted — the ``store_stats``
        totals must never drift from the rows that actually reach snapshots.
        With a journal attached the batch is committed (one fsync under the
        ``"batch"`` policy) in every outcome, including the partial-failure
        path — the buffered prefix must be as durable as a full batch.
        """
        try:
            counts = self.buffer.extend(pairs)
        except IngestError as exc:
            partial = getattr(exc, "counts", None)
            if partial:
                with self._stats_lock:
                    self.accepted_total += partial.get(ACCEPTED, 0)
                    self.duplicates_total += partial.get(DUPLICATE, 0)
            raise
        finally:
            if self.journal is not None:
                self.journal.commit()
        with self._stats_lock:
            self.accepted_total += counts[ACCEPTED]
            self.duplicates_total += counts[DUPLICATE]
        return counts

    def should_auto_compact(self) -> bool:
        """True when the buffer has reached the auto-compaction threshold."""
        return 0 < self.auto_compact_threshold <= len(self.buffer)

    # -- compaction ----------------------------------------------------------------

    def compact(self) -> CompactionResult:
        """Merge the buffer into a new snapshot at the next epoch.

        An empty buffer is a no-op (same snapshot, same epoch) — readers of
        an unchanged store must keep their cache entries.  Otherwise the
        previous snapshot keeps serving until the very last step, when the
        reference is swapped atomically.
        """
        with self._compact_lock:
            previous = self._snapshot
            on_drain = (
                (lambda: self.journal.rotate(previous.epoch + 1))
                if self.journal is not None
                else None
            )
            ratings, reviewers = self.buffer.drain(on_drain)
            if not ratings and not reviewers:
                return CompactionResult(
                    store=previous,
                    delta=None,
                    previous_epoch=previous.epoch,
                    epoch=previous.epoch,
                    mode="noop",
                )
            started_at = time.perf_counter()
            store, delta = compact_snapshot(
                previous, ratings, reviewers, use_incremental=self.use_incremental
            )
            elapsed = time.perf_counter() - started_at
            self._snapshot = store  # atomic swap: readers see old xor new
            self.buffer.rebase(store)
            if self.journal is not None:
                # Snapshot-on-compact.  A failure here propagates (the caller
                # sees the compaction fail) but recovery stays correct: the
                # sealed log already covers every row of the new epoch.
                self.journal.on_compacted(store)
            result = CompactionResult(
                store=store,
                delta=delta,
                previous_epoch=previous.epoch,
                epoch=store.epoch,
                mode="incremental" if self.use_incremental else "rebuild",
                elapsed_seconds=elapsed,
            )
            with self._stats_lock:
                self.compactions += 1
                self.last_compaction = result.to_dict()
            return result

    # -- reporting -----------------------------------------------------------------

    def stats(self) -> dict:
        """Deterministic counters for the ``store_stats`` endpoint."""
        snapshot = self._snapshot
        with self._stats_lock:
            return {
                "epoch": snapshot.epoch,
                "rows": len(snapshot),
                "reviewers": snapshot.dataset.num_reviewers,
                "items": snapshot.dataset.num_items,
                "buffered": len(self.buffer),
                "buffered_reviewers": self.buffer.pending_reviewers,
                "accepted_total": self.accepted_total,
                "duplicates_total": self.duplicates_total,
                "compactions": self.compactions,
                "auto_compact_threshold": self.auto_compact_threshold,
                "incremental": self.use_incremental,
                "last_compaction": self.last_compaction,
            }
