"""MovieLens-1M-shaped synthetic dataset generator with planted group structure.

The demo runs on the MovieLens "Million rating data set" joined with IMDB
metadata (§3).  That download is unavailable offline, so this module generates
a dataset with the same *shape*:

* reviewers with MovieLens demographics (gender, age band, occupation code,
  zip code) whose marginal distributions follow the real ML-1M ones,
* movies with genres, release years and IMDB-style actor/director credits,
* rating triples whose scores follow a demographic bias model.

Crucially, the generator *plants* the group structure that the paper's
narrative relies on, so the mining layer's output is verifiable:

* ``"Toy Story"`` is loved by male reviewers in California, male reviewers in
  Massachusetts and young female students in New York (the three groups of
  Figure 2),
* ``"The Twilight Saga: Eclipse"`` polarises male vs. female reviewers under
  18 (the Diversity Mining example of §1),
* ``"Drifting Star"`` starts loved and ends disliked over the rating years
  (the time-slider claim of §3.1).

Everything is driven by an explicit seed: the same configuration always
produces the identical dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import DataError
from ..geo.states import ALL_STATE_CODES, state_by_code
from ..geo.zipcodes import zipcode_for
from .imdb import SyntheticImdbCatalog
from .model import Item, Rating, RatingDataset, Reviewer
from .schema import AGE_GROUPS, GENRES, OCCUPATIONS, age_group_for, default_schema

# ---------------------------------------------------------------------------
# Distributions approximating MovieLens-1M marginals
# ---------------------------------------------------------------------------

#: P(gender) — ML-1M is male-heavy.
GENDER_WEIGHTS: Mapping[str, float] = {"M": 0.72, "F": 0.28}

#: P(age code) over the MovieLens age bands.
AGE_WEIGHTS: Mapping[int, float] = {
    1: 0.04,
    18: 0.18,
    25: 0.35,
    35: 0.20,
    45: 0.09,
    50: 0.08,
    56: 0.06,
}

#: Approximate relative population weights for the states used when placing
#: reviewers; only the ratios matter.
STATE_WEIGHTS: Mapping[str, float] = {
    "CA": 12.0, "TX": 8.5, "NY": 6.5, "FL": 6.3, "PA": 4.2, "IL": 4.1, "OH": 3.8,
    "GA": 3.4, "NC": 3.3, "MI": 3.2, "NJ": 2.9, "VA": 2.7, "WA": 2.4, "AZ": 2.3,
    "MA": 2.2, "TN": 2.2, "IN": 2.1, "MO": 2.0, "MD": 1.9, "WI": 1.9, "CO": 1.8,
    "MN": 1.8, "SC": 1.6, "AL": 1.6, "LA": 1.5, "KY": 1.4, "OR": 1.3, "OK": 1.3,
    "CT": 1.1, "UT": 1.0, "IA": 1.0, "NV": 1.0, "AR": 0.9, "MS": 0.9, "KS": 0.9,
    "NM": 0.7, "NE": 0.6, "ID": 0.6, "WV": 0.6, "HI": 0.5, "NH": 0.4, "ME": 0.4,
    "MT": 0.4, "RI": 0.3, "DE": 0.3, "SD": 0.3, "ND": 0.2, "AK": 0.2, "DC": 0.2,
    "VT": 0.2, "WY": 0.2,
}

#: Per-genre rating affinity by gender: score delta added when the reviewer's
#: gender matches.
GENRE_GENDER_AFFINITY: Mapping[str, Mapping[str, float]] = {
    "Romance": {"F": 0.35, "M": -0.10},
    "War": {"M": 0.25, "F": -0.10},
    "Western": {"M": 0.20, "F": -0.10},
    "Action": {"M": 0.15, "F": -0.05},
    "Musical": {"F": 0.25},
    "Horror": {"F": -0.15, "M": 0.10},
}

#: Per-genre affinity by age band.
GENRE_AGE_AFFINITY: Mapping[str, Mapping[str, float]] = {
    "Animation": {"Under 18": 0.45, "18-24": 0.15, "56+": -0.10},
    "Children's": {"Under 18": 0.50, "25-34": -0.10, "56+": -0.15},
    "Horror": {"Under 18": 0.20, "18-24": 0.25, "50-55": -0.20, "56+": -0.30},
    "Film-Noir": {"45-49": 0.25, "50-55": 0.30, "56+": 0.35, "Under 18": -0.25},
    "Documentary": {"45-49": 0.20, "56+": 0.25, "Under 18": -0.20},
    "Sci-Fi": {"18-24": 0.20, "25-34": 0.15, "56+": -0.10},
    "Romance": {"Under 18": 0.15, "45-49": 0.10},
}

#: Occupations with a small extra affinity for selected genres.
GENRE_OCCUPATION_AFFINITY: Mapping[str, Mapping[str, float]] = {
    "Animation": {"K-12 student": 0.25, "college/grad student": 0.10},
    "Sci-Fi": {"programmer": 0.25, "technician/engineer": 0.20, "scientist": 0.20},
    "Documentary": {"academic/educator": 0.25, "scientist": 0.15},
    "Drama": {"writer": 0.20, "artist": 0.15},
}


@dataclass(frozen=True)
class PlantedRule:
    """A planted demographic effect for one movie.

    Attributes:
        conditions: reviewer attribute/value pairs that must all match.
        delta: score delta added when the reviewer matches.
    """

    conditions: Mapping[str, str]
    delta: float

    def matches(self, reviewer: Reviewer) -> bool:
        """True when the reviewer satisfies every condition of the rule."""
        return all(
            reviewer.attribute(name) == value for name, value in self.conditions.items()
        )


@dataclass(frozen=True)
class SeedMovie:
    """A named movie with planted structure referenced by the paper."""

    title: str
    year: int
    genres: Tuple[str, ...]
    base_quality: float
    popularity: float = 5.0
    rules: Tuple[PlantedRule, ...] = ()
    yearly_trend: Mapping[int, float] = field(default_factory=dict)


def default_seed_movies() -> Tuple[SeedMovie, ...]:
    """The seed movies that make the paper's examples reproducible."""
    return (
        SeedMovie(
            title="Toy Story",
            year=1995,
            genres=("Animation", "Children's", "Comedy"),
            base_quality=3.6,
            popularity=9.0,
            rules=(
                PlantedRule({"gender": "M", "state": "CA"}, 1.0),
                PlantedRule({"gender": "M", "state": "MA"}, 0.9),
                PlantedRule(
                    {
                        "gender": "F",
                        "age_group": AGE_GROUPS[1],
                        "occupation": "K-12 student",
                        "state": "NY",
                    },
                    0.6,
                ),
            ),
        ),
        SeedMovie(
            title="The Twilight Saga: Eclipse",
            year=2003,
            genres=("Romance", "Drama"),
            base_quality=2.6,
            popularity=8.0,
            rules=(
                PlantedRule({"gender": "F", "age_group": AGE_GROUPS[1]}, 1.9),
                PlantedRule({"gender": "F", "age_group": AGE_GROUPS[45]}, 1.7),
                PlantedRule({"gender": "M", "age_group": AGE_GROUPS[1]}, -1.4),
            ),
        ),
        SeedMovie(
            title="Drifting Star",
            year=2000,
            genres=("Drama",),
            base_quality=3.5,
            popularity=6.0,
            yearly_trend={2000: 1.2, 2001: 0.5, 2002: -0.4, 2003: -1.1},
        ),
        SeedMovie(
            title="The Social Network",
            year=2003,
            genres=("Drama",),
            base_quality=4.1,
            popularity=6.0,
        ),
        SeedMovie(
            title="The Lord of the Rings: The Fellowship of the Ring",
            year=2001,
            genres=("Adventure", "Fantasy"),
            base_quality=4.3,
            popularity=8.0,
        ),
        SeedMovie(
            title="The Lord of the Rings: The Two Towers",
            year=2002,
            genres=("Adventure", "Fantasy"),
            base_quality=4.2,
            popularity=7.0,
        ),
        SeedMovie(
            title="The Lord of the Rings: The Return of the King",
            year=2003,
            genres=("Adventure", "Fantasy"),
            base_quality=4.3,
            popularity=7.0,
        ),
        SeedMovie(
            title="Jurassic Park",
            year=1993,
            genres=("Action", "Sci-Fi", "Thriller"),
            base_quality=3.9,
            popularity=7.0,
        ),
        SeedMovie(
            title="Jaws",
            year=1975,
            genres=("Thriller", "Horror"),
            base_quality=4.0,
            popularity=5.0,
        ),
        SeedMovie(
            title="Minority Report",
            year=2002,
            genres=("Sci-Fi", "Thriller"),
            base_quality=3.8,
            popularity=5.0,
        ),
        SeedMovie(
            title="Saving Private Ryan",
            year=1998,
            genres=("Drama", "War"),
            base_quality=4.3,
            popularity=7.0,
        ),
        SeedMovie(
            title="Forrest Gump",
            year=1994,
            genres=("Comedy", "Drama", "Romance"),
            base_quality=4.1,
            popularity=7.0,
        ),
        SeedMovie(
            title="Apollo 13",
            year=1995,
            genres=("Drama",),
            base_quality=3.9,
            popularity=5.0,
        ),
        SeedMovie(
            title="Annie Hall",
            year=1977,
            genres=("Comedy", "Romance"),
            base_quality=4.0,
            popularity=4.0,
        ),
        SeedMovie(
            title="Manhattan",
            year=1979,
            genres=("Comedy", "Drama", "Romance"),
            base_quality=3.9,
            popularity=4.0,
        ),
    )


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic generator.

    Attributes:
        num_reviewers: size of the reviewer community ``U``.
        num_movies: size of the catalogue ``I`` (including seed movies).
        ratings_per_reviewer: mean number of ratings each reviewer produces.
        start_year / end_year: calendar range of rating timestamps.
        noise_std: standard deviation of the per-rating Gaussian noise.
        seed: seed of the NumPy generator driving every random choice.
    """

    num_reviewers: int = 600
    num_movies: int = 240
    ratings_per_reviewer: float = 40.0
    start_year: int = 2000
    end_year: int = 2003
    noise_std: float = 0.65
    seed: int = 2012

    def __post_init__(self) -> None:
        if self.num_reviewers < 1 or self.num_movies < 1:
            raise DataError("the dataset needs at least one reviewer and one movie")
        if self.ratings_per_reviewer < 1:
            raise DataError("ratings_per_reviewer must be at least 1")
        if self.end_year < self.start_year:
            raise DataError("end_year precedes start_year")


#: Named presets covering test, example and benchmark scales.
SCALE_PRESETS: Mapping[str, SyntheticConfig] = {
    "tiny": SyntheticConfig(num_reviewers=150, num_movies=60, ratings_per_reviewer=25.0),
    "small": SyntheticConfig(num_reviewers=600, num_movies=240, ratings_per_reviewer=40.0),
    "medium": SyntheticConfig(num_reviewers=2000, num_movies=900, ratings_per_reviewer=60.0),
    "ml1m": SyntheticConfig(num_reviewers=6040, num_movies=3883, ratings_per_reviewer=165.0),
}


class SyntheticMovieLens:
    """Generator producing a :class:`RatingDataset` from a :class:`SyntheticConfig`."""

    def __init__(
        self,
        config: Optional[SyntheticConfig] = None,
        seed_movies: Optional[Sequence[SeedMovie]] = None,
    ) -> None:
        self.config = config or SyntheticConfig()
        self.seed_movies = tuple(seed_movies if seed_movies is not None else default_seed_movies())
        if len(self.seed_movies) > self.config.num_movies:
            self.seed_movies = self.seed_movies[: self.config.num_movies]
        self._rng = np.random.default_rng(self.config.seed)
        self._imdb = SyntheticImdbCatalog()

    # -- public API -----------------------------------------------------------

    def generate(self, name: str = "synthetic-movielens") -> RatingDataset:
        """Generate the full dataset (reviewers, movies, ratings)."""
        reviewers = self._generate_reviewers()
        items = self._generate_items()
        ratings = self._generate_ratings(reviewers, items)
        schema = default_schema(states=ALL_STATE_CODES)
        return RatingDataset(
            reviewers=reviewers,
            items=items,
            ratings=ratings,
            schema=schema,
            name=name,
            validate=False,
        )

    # -- reviewers --------------------------------------------------------------

    def _generate_reviewers(self) -> List[Reviewer]:
        config = self.config
        rng = self._rng
        genders = list(GENDER_WEIGHTS)
        gender_p = np.array([GENDER_WEIGHTS[g] for g in genders])
        age_codes = list(AGE_WEIGHTS)
        age_p = np.array([AGE_WEIGHTS[a] for a in age_codes])
        occupations = list(OCCUPATIONS.values())
        state_codes = list(STATE_WEIGHTS)
        state_p = np.array([STATE_WEIGHTS[s] for s in state_codes])
        state_p = state_p / state_p.sum()

        chosen_genders = rng.choice(genders, size=config.num_reviewers, p=gender_p / gender_p.sum())
        chosen_ages = rng.choice(age_codes, size=config.num_reviewers, p=age_p / age_p.sum())
        chosen_occupations = rng.choice(occupations, size=config.num_reviewers)
        chosen_states = rng.choice(state_codes, size=config.num_reviewers, p=state_p)

        reviewers: List[Reviewer] = []
        for idx in range(config.num_reviewers):
            state_code = str(chosen_states[idx])
            state = state_by_code(state_code)
            city_index = int(rng.integers(0, max(len(state.cities), 1)))
            zipcode = zipcode_for(state_code, city_index=city_index, offset=idx)
            reviewers.append(
                Reviewer(
                    reviewer_id=idx + 1,
                    gender=str(chosen_genders[idx]),
                    age=int(chosen_ages[idx]),
                    occupation=str(chosen_occupations[idx]),
                    zipcode=zipcode,
                    state=state_code,
                    city=state.cities[city_index] if state.cities else state.name,
                )
            )
        return reviewers

    # -- items -------------------------------------------------------------------

    def _generate_items(self) -> List[Item]:
        config = self.config
        rng = self._rng
        items: List[Item] = []
        for idx, seed in enumerate(self.seed_movies):
            items.append(
                Item(
                    item_id=idx + 1,
                    title=seed.title,
                    year=seed.year,
                    genres=seed.genres,
                )
            )
        genre_list = list(GENRES)
        for idx in range(len(self.seed_movies), config.num_movies):
            n_genres = int(rng.integers(1, 4))
            genres = tuple(
                sorted(rng.choice(genre_list, size=n_genres, replace=False).tolist())
            )
            year = int(rng.integers(1960, config.end_year + 1))
            items.append(
                Item(
                    item_id=idx + 1,
                    title=f"Synthetic Movie {idx + 1:04d}",
                    year=year,
                    genres=genres,
                )
            )
        return [self._imdb.enrich(item) for item in items]

    # -- ratings -----------------------------------------------------------------

    def _item_base_qualities(self, items: Sequence[Item]) -> np.ndarray:
        rng = self._rng
        base = rng.normal(loc=3.5, scale=0.45, size=len(items))
        for idx, seed in enumerate(self.seed_movies):
            base[idx] = seed.base_quality
        return np.clip(base, 1.5, 4.7)

    def _item_popularities(self, items: Sequence[Item]) -> np.ndarray:
        """Long-tailed sampling weights; seed movies get a popularity boost."""
        rng = self._rng
        ranks = np.arange(1, len(items) + 1, dtype=np.float64)
        rng.shuffle(ranks)
        weights = 1.0 / np.power(ranks, 0.8)
        for idx, seed in enumerate(self.seed_movies):
            weights[idx] = max(weights[idx], seed.popularity * weights.max() / 5.0)
        return weights / weights.sum()

    def _genre_matrix(self, items: Sequence[Item]) -> Tuple[np.ndarray, List[str]]:
        genre_list = list(GENRES)
        genre_index = {g: i for i, g in enumerate(genre_list)}
        matrix = np.zeros((len(items), len(genre_list)), dtype=np.float64)
        for row, item in enumerate(items):
            for genre in item.genres:
                col = genre_index.get(genre)
                if col is not None:
                    matrix[row, col] = 1.0
        return matrix, genre_list

    def _affinity_vector(self, reviewer: Reviewer, genre_list: Sequence[str]) -> np.ndarray:
        """Per-genre score delta for this reviewer's demographics."""
        weights = np.zeros(len(genre_list), dtype=np.float64)
        for col, genre in enumerate(genre_list):
            weights[col] += GENRE_GENDER_AFFINITY.get(genre, {}).get(reviewer.gender, 0.0)
            weights[col] += GENRE_AGE_AFFINITY.get(genre, {}).get(reviewer.age_group, 0.0)
            weights[col] += GENRE_OCCUPATION_AFFINITY.get(genre, {}).get(
                reviewer.occupation, 0.0
            )
        return weights

    def _generate_ratings(
        self, reviewers: Sequence[Reviewer], items: Sequence[Item]
    ) -> List[Rating]:
        config = self.config
        rng = self._rng
        num_items = len(items)
        base_quality = self._item_base_qualities(items)
        popularity = self._item_popularities(items)
        genre_matrix, genre_list = self._genre_matrix(items)

        start_ts = int(datetime(config.start_year, 1, 1, tzinfo=timezone.utc).timestamp())
        end_ts = int(datetime(config.end_year, 12, 31, 23, 59, 59, tzinfo=timezone.utc).timestamp())

        planted_by_item: Dict[int, SeedMovie] = {
            idx: seed for idx, seed in enumerate(self.seed_movies)
        }

        ratings: List[Rating] = []
        for reviewer in reviewers:
            count = int(
                np.clip(
                    rng.lognormal(mean=np.log(config.ratings_per_reviewer), sigma=0.5),
                    5,
                    max(6, num_items),
                )
            )
            count = min(count, num_items)
            sampled = rng.choice(num_items, size=count, replace=False, p=popularity)
            reviewer_bias = float(rng.normal(0.0, 0.25))
            affinity = genre_matrix[sampled] @ self._affinity_vector(reviewer, genre_list)
            noise = rng.normal(0.0, config.noise_std, size=count)
            timestamps = rng.integers(start_ts, end_ts + 1, size=count)
            scores = base_quality[sampled] + affinity + reviewer_bias + noise

            for offset, item_index in enumerate(sampled.tolist()):
                delta = 0.0
                seed_movie = planted_by_item.get(item_index)
                if seed_movie is not None:
                    for rule in seed_movie.rules:
                        if rule.matches(reviewer):
                            delta += rule.delta
                    if seed_movie.yearly_trend:
                        year = datetime.fromtimestamp(
                            int(timestamps[offset]), tz=timezone.utc
                        ).year
                        delta += seed_movie.yearly_trend.get(year, 0.0)
                score = float(np.clip(round(scores[offset] + delta), 1, 5))
                ratings.append(
                    Rating(
                        item_id=items[item_index].item_id,
                        reviewer_id=reviewer.reviewer_id,
                        score=score,
                        timestamp=int(timestamps[offset]),
                    )
                )
        return ratings


def generate_dataset(
    scale: str = "small",
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> RatingDataset:
    """Generate a synthetic MovieLens-shaped dataset by preset name.

    Args:
        scale: one of ``"tiny"``, ``"small"``, ``"medium"``, ``"ml1m"``.
        seed: overrides the preset's seed when given.
        name: overrides the dataset name.
    """
    if scale not in SCALE_PRESETS:
        raise DataError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALE_PRESETS)}"
        )
    config = SCALE_PRESETS[scale]
    if seed is not None:
        config = SyntheticConfig(
            num_reviewers=config.num_reviewers,
            num_movies=config.num_movies,
            ratings_per_reviewer=config.ratings_per_reviewer,
            start_year=config.start_year,
            end_year=config.end_year,
            noise_std=config.noise_std,
            seed=seed,
        )
    generator = SyntheticMovieLens(config)
    return generator.generate(name=name or f"synthetic-{scale}")
