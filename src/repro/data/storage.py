"""In-memory rating store with the indexes the mining layer needs.

The Rating Mining module of the paper "accepts a set of items I from the
front-end and collects all the corresponding rating tuples R_I" (§2.3), then
builds reviewer groups over those tuples.  :class:`RatingStore` is the storage
substrate that makes this fast:

* an inverted index item → rating positions,
* per-reviewer attribute columns materialised once, and
* :class:`RatingSlice`, a columnar view over the rating tuples of one query
  (numpy arrays for scores/timestamps, per-attribute string columns) that the
  data-cube enumerator and the objective functions operate on directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import DataError, EmptyRatingSetError
from .model import Rating, RatingDataset, Reviewer


@dataclass
class RatingSlice:
    """Columnar view of the rating tuples selected by one item query (``R_I``).

    Attributes:
        item_ids: array of item ids, one per rating tuple.
        reviewer_ids: array of reviewer ids, one per rating tuple.
        scores: float array of rating scores.
        timestamps: int array of rating timestamps.
        attribute_columns: mapping attribute name → list of string values,
            aligned with the arrays above (reviewer attributes of the rater).
    """

    item_ids: np.ndarray
    reviewer_ids: np.ndarray
    scores: np.ndarray
    timestamps: np.ndarray
    attribute_columns: Dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.scores.shape[0])

    @property
    def size(self) -> int:
        return len(self)

    def is_empty(self) -> bool:
        return len(self) == 0

    def average(self) -> float:
        """Overall average rating of the slice (the aggregate sites show today)."""
        if self.is_empty():
            return 0.0
        return float(self.scores.mean())

    def attribute_values(self, attribute: str) -> np.ndarray:
        """Column of reviewer attribute values aligned with the rating tuples."""
        try:
            return self.attribute_columns[attribute]
        except KeyError as exc:
            raise DataError(f"slice has no attribute column {attribute!r}") from exc

    def distinct_values(self, attribute: str) -> List[str]:
        """Sorted distinct non-empty values of an attribute column."""
        column = self.attribute_values(attribute)
        values = {v for v in column.tolist() if v}
        return sorted(values)

    def mask_for(self, attribute: str, value: str) -> np.ndarray:
        """Boolean mask of tuples whose reviewer has ``attribute == value``."""
        return self.attribute_values(attribute) == value

    def restrict(self, mask: np.ndarray, copy_columns: bool = True) -> "RatingSlice":
        """Return a sub-slice containing only the tuples selected by ``mask``."""
        columns = {
            name: col[mask] if copy_columns else col
            for name, col in self.attribute_columns.items()
        }
        return RatingSlice(
            item_ids=self.item_ids[mask],
            reviewer_ids=self.reviewer_ids[mask],
            scores=self.scores[mask],
            timestamps=self.timestamps[mask],
            attribute_columns=columns,
        )

    def restrict_to_interval(self, start: int, end: int) -> "RatingSlice":
        """Return the sub-slice of ratings with timestamps in ``[start, end]``."""
        if end < start:
            raise DataError("time interval end precedes start")
        mask = (self.timestamps >= start) & (self.timestamps <= end)
        return self.restrict(mask)

    def score_histogram(self, bins: Sequence[float] = (1, 2, 3, 4, 5)) -> Dict[float, int]:
        """Count of ratings per score value (Figure 3 statistics)."""
        histogram: Dict[float, int] = {float(b): 0 for b in bins}
        for score in self.scores.tolist():
            key = float(round(score))
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def years(self) -> List[int]:
        """Sorted distinct calendar years present in the slice."""
        if self.is_empty():
            return []
        years = np.unique(self.timestamps.astype("datetime64[s]").astype("datetime64[Y]"))
        return sorted(int(str(y)) for y in years)


class RatingStore:
    """Indexed, column-oriented store built once over a :class:`RatingDataset`.

    Construction cost is paid once per dataset ("aggressive data
    pre-processing", §2.3); after that, slicing the ratings of any item set is
    an index lookup plus a few numpy gathers.
    """

    def __init__(
        self,
        dataset: RatingDataset,
        grouping_attributes: Sequence[str] = ("gender", "age_group", "occupation", "state", "city"),
    ) -> None:
        self.dataset = dataset
        self.grouping_attributes = tuple(grouping_attributes)
        ratings = list(dataset.ratings())
        self._item_ids = np.array([r.item_id for r in ratings], dtype=np.int64)
        self._reviewer_ids = np.array([r.reviewer_id for r in ratings], dtype=np.int64)
        self._scores = np.array([r.score for r in ratings], dtype=np.float64)
        self._timestamps = np.array([r.timestamp for r in ratings], dtype=np.int64)
        self._positions_by_item: Dict[int, np.ndarray] = self._build_item_index()
        self._attribute_columns = self._build_attribute_columns()

    # -- construction ------------------------------------------------------------

    def _build_item_index(self) -> Dict[int, np.ndarray]:
        positions: Dict[int, List[int]] = {}
        for pos, item_id in enumerate(self._item_ids.tolist()):
            positions.setdefault(item_id, []).append(pos)
        return {
            item_id: np.array(pos_list, dtype=np.int64)
            for item_id, pos_list in positions.items()
        }

    def _build_attribute_columns(self) -> Dict[str, np.ndarray]:
        reviewer_values: Dict[int, Dict[str, str]] = {}
        for reviewer in self.dataset.reviewers():
            reviewer_values[reviewer.reviewer_id] = {
                name: reviewer.attribute(name) for name in self.grouping_attributes
            }
        columns: Dict[str, List[str]] = {name: [] for name in self.grouping_attributes}
        for reviewer_id in self._reviewer_ids.tolist():
            values = reviewer_values[reviewer_id]
            for name in self.grouping_attributes:
                columns[name].append(values[name])
        return {
            name: np.array(values, dtype=object)
            for name, values in columns.items()
        }

    # -- sizes --------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self._scores.shape[0])

    @property
    def num_ratings(self) -> int:
        return len(self)

    def item_rating_count(self, item_id: int) -> int:
        positions = self._positions_by_item.get(item_id)
        return 0 if positions is None else int(positions.shape[0])

    def most_rated_items(self, limit: int = 10) -> List[Tuple[int, int]]:
        """Return ``(item_id, rating_count)`` pairs sorted by popularity."""
        counts = [
            (item_id, int(pos.shape[0]))
            for item_id, pos in self._positions_by_item.items()
        ]
        counts.sort(key=lambda pair: (-pair[1], pair[0]))
        return counts[:limit]

    # -- slicing ------------------------------------------------------------------

    def slice_for_items(
        self,
        item_ids: Iterable[int],
        time_interval: Optional[Tuple[int, int]] = None,
        allow_empty: bool = False,
    ) -> RatingSlice:
        """Collect the rating tuples ``R_I`` of an item set as a columnar slice.

        Args:
            item_ids: items selected by the front-end query.
            time_interval: optional ``(start, end)`` timestamp restriction
                (the time-interval search setting of Figure 1).
            allow_empty: return an empty slice instead of raising when the
                selection matches no ratings.
        """
        wanted = [iid for iid in item_ids if iid in self._positions_by_item]
        if wanted:
            positions = np.concatenate([self._positions_by_item[iid] for iid in wanted])
            positions.sort()
        else:
            positions = np.array([], dtype=np.int64)
        rating_slice = RatingSlice(
            item_ids=self._item_ids[positions],
            reviewer_ids=self._reviewer_ids[positions],
            scores=self._scores[positions],
            timestamps=self._timestamps[positions],
            attribute_columns={
                name: column[positions]
                for name, column in self._attribute_columns.items()
            },
        )
        if time_interval is not None:
            rating_slice = rating_slice.restrict_to_interval(*time_interval)
        if rating_slice.is_empty() and not allow_empty:
            raise EmptyRatingSetError(
                "the item selection matches no rating tuples"
            )
        return rating_slice

    def slice_all(self) -> RatingSlice:
        """Slice over every rating of the dataset."""
        everything = np.arange(len(self), dtype=np.int64)
        return RatingSlice(
            item_ids=self._item_ids[everything],
            reviewer_ids=self._reviewer_ids[everything],
            scores=self._scores[everything],
            timestamps=self._timestamps[everything],
            attribute_columns=dict(self._attribute_columns),
        )

    # -- aggregate helpers ----------------------------------------------------------

    def item_average(self, item_id: int) -> float:
        positions = self._positions_by_item.get(item_id)
        if positions is None or positions.shape[0] == 0:
            return 0.0
        return float(self._scores[positions].mean())

    def global_average(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self._scores.mean())
