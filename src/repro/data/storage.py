"""In-memory rating store with the indexes the mining layer needs.

The Rating Mining module of the paper "accepts a set of items I from the
front-end and collects all the corresponding rating tuples R_I" (§2.3), then
builds reviewer groups over those tuples.  :class:`RatingStore` is the storage
substrate that makes this fast:

* an inverted index item → rating positions,
* per-reviewer attribute columns factorised once into ``int32`` *code* arrays
  plus sorted vocabularies ("aggressive data pre-processing"), and
* :class:`RatingSlice`, a columnar view over the rating tuples of one query
  (numpy arrays for scores/timestamps, integer code columns per attribute)
  that the data-cube enumerator and the objective functions operate on
  directly.

The string-valued column API (``attribute_values`` / ``attribute_columns``) is
kept as a thin compat shim that decodes ``vocabulary[codes]`` lazily; all hot
paths (masking, distinct values, cube enumeration) run on the integer codes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import DataError, EmptyRatingSetError
from .lattice import CuboidLattice, LatticeHint
from .model import Rating, RatingDataset, Reviewer


def _factorize(column: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Factorise a string column into (sorted vocabulary, int32 codes)."""
    if column.shape[0] == 0:
        return np.array([], dtype=object), np.array([], dtype=np.int32)
    vocabulary, codes = np.unique(column, return_inverse=True)
    return vocabulary, codes.astype(np.int32, copy=False)


def _pack_positions(positions: np.ndarray, total: int) -> np.ndarray:
    """Pack sorted row positions into a uint8 bitset of ``total`` bits."""
    member = np.zeros(int(total), dtype=bool)
    if positions.shape[0]:
        member[positions] = True
    return np.packbits(member)


class AttributeIndex:
    """Per-value aggregates + packed membership bitsets of one code column.

    For every value of a factorized attribute (e.g. every state), the index
    holds the statistics the geo surface serves — count, score sum,
    positive/negative shares, the joint (value × score) histogram — and a
    packed bitset of the value's row positions.  All of it falls out of a
    handful of ``np.bincount`` passes at build time, and — the point of this
    class — it is **maintained incrementally across compactions**: appended
    rows contribute *delta bincounts* that are added onto the existing
    arrays, and vocabulary growth scatters the old rows onto their remapped
    code positions.  No full-store rescan happens on ingest.

    Exactness note: counts, histograms and bitsets are integers, so the
    delta-updated index is always bit-identical to one rebuilt from scratch.
    The float ``sums``/``positives``/``negatives`` accumulators are exact as
    long as scores are exactly representable in binary (integers or halves —
    every real rating-site scale), which the differential test battery pins.
    """

    __slots__ = (
        "attribute", "num_rows", "counts", "sums",
        "positives", "negatives", "joint", "bits",
    )

    def __init__(
        self,
        attribute: str,
        num_rows: int,
        counts: np.ndarray,
        sums: np.ndarray,
        positives: np.ndarray,
        negatives: np.ndarray,
        joint: np.ndarray,
        bits: np.ndarray,
    ) -> None:
        self.attribute = attribute
        self.num_rows = int(num_rows)
        self.counts = counts
        self.sums = sums
        self.positives = positives
        self.negatives = negatives
        self.joint = joint
        self.bits = bits

    @classmethod
    def build(
        cls, attribute: str, codes: np.ndarray, scores: np.ndarray, num_values: int
    ) -> "AttributeIndex":
        """Build the index from scratch over one code column."""
        num_rows = int(codes.shape[0])
        counts = np.bincount(codes, minlength=num_values)
        sums = np.bincount(codes, weights=scores, minlength=num_values)
        positives = np.bincount(codes, weights=(scores >= 4), minlength=num_values)
        negatives = np.bincount(codes, weights=(scores <= 2), minlength=num_values)
        if num_rows:
            bins = np.clip(np.rint(scores).astype(np.int64), 1, 5) - 1
            joint = np.bincount(
                codes.astype(np.int64) * 5 + bins, minlength=num_values * 5
            )
        else:
            joint = np.zeros(num_values * 5, dtype=np.int64)
        words = (num_rows + 7) // 8
        bits = np.zeros((num_values, words), dtype=np.uint8)
        if num_rows:
            order = np.argsort(codes, kind="stable")
            boundaries = np.flatnonzero(np.diff(codes[order])) + 1
            for segment in np.split(order, boundaries):
                bits[int(codes[segment[0]])] = _pack_positions(segment, num_rows)
        return cls(attribute, num_rows, counts, sums, positives, negatives, joint, bits)

    @property
    def num_values(self) -> int:
        """Number of vocabulary values the index covers."""
        return int(self.counts.shape[0])

    def positions_for(self, code: int) -> np.ndarray:
        """Ascending row positions of one value, unpacked from its bitset."""
        if not 0 <= code < self.num_values:
            return np.array([], dtype=np.int64)
        member = np.unpackbits(self.bits[code], count=self.num_rows).astype(bool)
        return np.flatnonzero(member).astype(np.int64)

    def updated(
        self,
        remap: np.ndarray,
        num_values: int,
        delta_codes: np.ndarray,
        delta_scores: np.ndarray,
    ) -> "AttributeIndex":
        """A new index for the compacted store: scatter + delta bincounts.

        ``remap[old_code] -> new_code`` re-homes the existing per-value rows
        after vocabulary growth; the appended rows (``delta_codes`` already in
        the new code space) contribute plain delta bincounts on top.  The
        bitsets are extended in place of the appended rows only — existing
        bytes are copied, never recomputed.
        """
        new_rows = self.num_rows + int(delta_codes.shape[0])

        def scatter(old: np.ndarray) -> np.ndarray:
            fresh = np.zeros(num_values, dtype=old.dtype)
            if old.shape[0]:
                fresh[remap] = old
            return fresh

        counts = scatter(self.counts)
        counts += np.bincount(delta_codes, minlength=num_values)
        sums = scatter(self.sums)
        sums += np.bincount(delta_codes, weights=delta_scores, minlength=num_values)
        positives = scatter(self.positives)
        positives += np.bincount(
            delta_codes, weights=(delta_scores >= 4), minlength=num_values
        )
        negatives = scatter(self.negatives)
        negatives += np.bincount(
            delta_codes, weights=(delta_scores <= 2), minlength=num_values
        )
        joint = np.zeros(num_values * 5, dtype=self.joint.dtype)
        if self.joint.shape[0]:
            joint.reshape(num_values, 5)[remap] = self.joint.reshape(-1, 5)
        if delta_codes.shape[0]:
            bins = np.clip(np.rint(delta_scores).astype(np.int64), 1, 5) - 1
            joint += np.bincount(
                delta_codes.astype(np.int64) * 5 + bins, minlength=num_values * 5
            )
        words = (new_rows + 7) // 8
        bits = np.zeros((num_values, words), dtype=np.uint8)
        if self.bits.shape[1]:
            bits[remap, : self.bits.shape[1]] = self.bits
        if delta_codes.shape[0]:
            # Appended rows start at self.num_rows; pack them from the last
            # byte boundary so the straddling byte is OR-merged, not rebuilt.
            base_byte = self.num_rows // 8
            base_bit = base_byte * 8
            tail_bits = new_rows - base_bit
            for code in np.unique(delta_codes).tolist():
                member = np.zeros(tail_bits, dtype=bool)
                member[
                    (self.num_rows - base_bit)
                    + np.flatnonzero(delta_codes == code)
                ] = True
                packed = np.packbits(member)
                np.bitwise_or(
                    bits[code, base_byte : base_byte + packed.shape[0]],
                    packed,
                    out=bits[code, base_byte : base_byte + packed.shape[0]],
                )
        return AttributeIndex(
            self.attribute, new_rows, counts, sums, positives, negatives, joint, bits
        )


class _LazyColumns(Mapping):
    """Mapping view that decodes string columns from codes on first access.

    Keeps the historical ``slice.attribute_columns[name] -> np.ndarray[str]``
    contract alive without paying the object-array gather per slice unless a
    caller actually asks for strings.
    """

    def __init__(
        self,
        code_columns: Dict[str, np.ndarray],
        vocabularies: Dict[str, np.ndarray],
    ) -> None:
        self._code_columns = code_columns
        self._vocabularies = vocabularies
        self._decoded: Dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._decoded:
            codes = self._code_columns[name]
            vocabulary = self._vocabularies[name]
            if codes.shape[0] == 0:
                self._decoded[name] = np.array([], dtype=object)
            else:
                self._decoded[name] = vocabulary[codes]
        return self._decoded[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._code_columns)

    def __len__(self) -> int:
        return len(self._code_columns)


@dataclass
class RatingSlice:
    """Columnar view of the rating tuples selected by one item query (``R_I``).

    Attributes:
        item_ids: array of item ids, one per rating tuple.
        reviewer_ids: array of reviewer ids, one per rating tuple.
        scores: float array of rating scores.
        timestamps: int array of rating timestamps.
        attribute_columns: mapping attribute name → array of string values,
            aligned with the arrays above (reviewer attributes of the rater).
        code_columns: mapping attribute name → ``int32`` codes into the
            attribute's vocabulary (the mining kernel's working columns).
        vocabularies: mapping attribute name → sorted array of distinct
            string values; ``vocabulary[code]`` recovers the string.
        lattice_hint: how this slice relates to the store's materialised
            cuboid lattice.  Only the whole-store and region slices carry a
            hint (the shapes where lattice lookups beat the DFS kernel);
            item selections and restrictions stay on the kernel.  See
            :class:`~repro.data.lattice.LatticeHint`.
    """

    item_ids: np.ndarray
    reviewer_ids: np.ndarray
    scores: np.ndarray
    timestamps: np.ndarray
    attribute_columns: Mapping[str, np.ndarray] = field(default_factory=dict)
    code_columns: Dict[str, np.ndarray] = field(default_factory=dict)
    vocabularies: Dict[str, np.ndarray] = field(default_factory=dict)
    lattice_hint: Optional[LatticeHint] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.code_columns and not self.attribute_columns:
            self.attribute_columns = _LazyColumns(self.code_columns, self.vocabularies)

    def __len__(self) -> int:
        return int(self.scores.shape[0])

    @property
    def size(self) -> int:
        """Number of rating tuples in the slice."""
        return len(self)

    def is_empty(self) -> bool:
        """True when the slice holds no rating tuples."""
        return len(self) == 0

    def average(self) -> float:
        """Overall average rating of the slice (the aggregate sites show today)."""
        if self.is_empty():
            return 0.0
        return float(self.scores.mean())

    # -- integer-coded columns ----------------------------------------------------

    def codes_for(self, attribute: str) -> np.ndarray:
        """``int32`` code column of an attribute (factorised on demand)."""
        if attribute not in self.code_columns:
            self._factorize_attribute(attribute)
        return self.code_columns[attribute]

    def vocabulary(self, attribute: str) -> np.ndarray:
        """Sorted distinct string values of an attribute; ``vocab[code]`` decodes."""
        if attribute not in self.vocabularies:
            self._factorize_attribute(attribute)
        return self.vocabularies[attribute]

    def _factorize_attribute(self, attribute: str) -> None:
        """Build codes + vocabulary for a slice constructed from string columns."""
        try:
            column = self.attribute_columns[attribute]
        except KeyError as exc:
            raise DataError(f"slice has no attribute column {attribute!r}") from exc
        vocabulary, codes = _factorize(np.asarray(column, dtype=object))
        self.vocabularies[attribute] = vocabulary
        self.code_columns[attribute] = codes

    # -- string compat API --------------------------------------------------------

    def attribute_values(self, attribute: str) -> np.ndarray:
        """Column of reviewer attribute values aligned with the rating tuples."""
        try:
            return self.attribute_columns[attribute]
        except KeyError as exc:
            raise DataError(f"slice has no attribute column {attribute!r}") from exc

    def distinct_values(self, attribute: str) -> List[str]:
        """Sorted distinct non-empty values of an attribute column."""
        vocabulary = self.vocabulary(attribute)
        codes = self.codes_for(attribute)
        if codes.shape[0] == 0:
            return []
        present = np.bincount(codes, minlength=vocabulary.shape[0]) > 0
        return [value for value in vocabulary[present].tolist() if value]

    def mask_for(self, attribute: str, value: str) -> np.ndarray:
        """Boolean mask of tuples whose reviewer has ``attribute == value``."""
        vocabulary = self.vocabulary(attribute)
        codes = self.codes_for(attribute)
        index = int(np.searchsorted(vocabulary, value))
        if index >= vocabulary.shape[0] or vocabulary[index] != value:
            return np.zeros(len(self), dtype=bool)
        return codes == np.int32(index)

    # -- restriction --------------------------------------------------------------

    def restrict(self, mask: np.ndarray, copy_columns: bool = True) -> "RatingSlice":
        """Return a sub-slice containing only the tuples selected by ``mask``."""
        if self.code_columns:
            # A slice built from string columns may be only partially
            # factorized (mask_for/distinct_values factorize lazily, one
            # attribute at a time); factorize the rest so the code-column
            # sub-slice carries every attribute.
            for name in self.attribute_columns:
                if name not in self.code_columns:
                    self._factorize_attribute(name)
            codes = {
                name: col[mask] if copy_columns else col
                for name, col in self.code_columns.items()
            }
            return RatingSlice(
                item_ids=self.item_ids[mask],
                reviewer_ids=self.reviewer_ids[mask],
                scores=self.scores[mask],
                timestamps=self.timestamps[mask],
                code_columns=codes,
                vocabularies=dict(self.vocabularies),
                # A restricted slice is an arbitrary row subset — the DFS
                # kernel beats the lattice's flat scan there, so the hint is
                # dropped rather than downgraded (see LatticeHint).
            )
        columns = {
            name: col[mask] if copy_columns else col
            for name, col in self.attribute_columns.items()
        }
        return RatingSlice(
            item_ids=self.item_ids[mask],
            reviewer_ids=self.reviewer_ids[mask],
            scores=self.scores[mask],
            timestamps=self.timestamps[mask],
            attribute_columns=columns,
        )

    def restrict_to_interval(self, start: int, end: int) -> "RatingSlice":
        """Return the sub-slice of ratings with timestamps in ``[start, end]``."""
        if end < start:
            raise DataError("time interval end precedes start")
        mask = (self.timestamps >= start) & (self.timestamps <= end)
        return self.restrict(mask)

    def score_histogram(self, bins: Sequence[float] = (1, 2, 3, 4, 5)) -> Dict[float, int]:
        """Count of ratings per score value (Figure 3 statistics)."""
        histogram: Dict[float, int] = {float(b): 0 for b in bins}
        if self.is_empty():
            return histogram
        rounded = np.rint(self.scores).astype(np.int64)
        values, counts = np.unique(rounded, return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            key = float(value)
            histogram[key] = histogram.get(key, 0) + count
        return histogram

    def years(self) -> List[int]:
        """Sorted distinct calendar years present in the slice."""
        if self.is_empty():
            return []
        years = np.unique(self.timestamps.astype("datetime64[s]").astype("datetime64[Y]"))
        return sorted(int(str(y)) for y in years)


class RatingStore:
    """Indexed, column-oriented store built once over a :class:`RatingDataset`.

    Construction cost is paid once per dataset ("aggressive data
    pre-processing", §2.3); after that, slicing the ratings of any item set is
    an index lookup plus a few numpy gathers.  Attribute columns are stored as
    ``int32`` codes into per-attribute vocabularies, so slices carry compact
    integer columns and the mining kernel never touches Python strings.
    """

    def __init__(
        self,
        dataset: RatingDataset,
        grouping_attributes: Sequence[str] = (
            "gender", "age_group", "occupation", "state", "city", "zipcode"
        ),
        epoch: int = 0,
    ) -> None:
        self.dataset = dataset
        self.grouping_attributes = tuple(grouping_attributes)
        self.epoch = int(epoch)
        ratings = list(dataset.ratings())
        self._item_ids = np.array([r.item_id for r in ratings], dtype=np.int64)
        self._reviewer_ids = np.array([r.reviewer_id for r in ratings], dtype=np.int64)
        self._scores = np.array([r.score for r in ratings], dtype=np.float64)
        self._timestamps = np.array([r.timestamp for r in ratings], dtype=np.int64)
        self._positions_by_item: Dict[int, np.ndarray] = self._build_item_index()
        self._attribute_codes: Dict[str, np.ndarray] = {}
        self._vocabularies: Dict[str, np.ndarray] = {}
        self._indexes: Dict[str, AttributeIndex] = {}
        self._lattice: Optional[CuboidLattice] = None
        self._index_lock = threading.Lock()
        self._build_attribute_columns()

    @classmethod
    def _from_parts(
        cls,
        dataset: RatingDataset,
        grouping_attributes: Tuple[str, ...],
        item_ids: np.ndarray,
        reviewer_ids: np.ndarray,
        scores: np.ndarray,
        timestamps: np.ndarray,
        positions_by_item: Dict[int, np.ndarray],
        attribute_codes: Dict[str, np.ndarray],
        vocabularies: Dict[str, np.ndarray],
        epoch: int,
        indexes: Optional[Dict[str, "AttributeIndex"]] = None,
        lattice: Optional[CuboidLattice] = None,
    ) -> "RatingStore":
        """Assemble a snapshot from pre-built columns (the compaction path).

        Bypasses ``__init__``'s full pre-processing: the incremental
        compactor already produced every column, the item index, any
        delta-updated attribute indexes and the delta-merged cuboid lattice,
        so nothing is recomputed here.
        """
        store = object.__new__(cls)
        store.dataset = dataset
        store.grouping_attributes = tuple(grouping_attributes)
        store.epoch = int(epoch)
        store._item_ids = item_ids
        store._reviewer_ids = reviewer_ids
        store._scores = scores
        store._timestamps = timestamps
        store._positions_by_item = positions_by_item
        store._attribute_codes = attribute_codes
        store._vocabularies = vocabularies
        store._indexes = dict(indexes or {})
        store._lattice = lattice
        store._index_lock = threading.Lock()
        return store

    # -- construction ------------------------------------------------------------

    def _build_item_index(self) -> Dict[int, np.ndarray]:
        if self._item_ids.shape[0] == 0:
            return {}
        order = np.argsort(self._item_ids, kind="stable")
        sorted_items = self._item_ids[order]
        unique_items, starts = np.unique(sorted_items, return_index=True)
        segments = np.split(order, starts[1:])
        return {
            int(item_id): segment
            for item_id, segment in zip(unique_items.tolist(), segments)
        }

    def _build_attribute_columns(self) -> None:
        """Factorise each reviewer attribute once and gather codes per rating.

        One Python pass over the *reviewers* (unavoidable: attribute access is
        a Python call), then a vectorised ``searchsorted`` join maps every
        rating to its reviewer row and a gather yields the per-rating codes.
        """
        reviewers = list(self.dataset.reviewers())
        reviewer_ids = np.array(
            [r.reviewer_id for r in reviewers], dtype=np.int64
        )
        order = np.argsort(reviewer_ids, kind="stable")
        sorted_ids = reviewer_ids[order]
        if self._reviewer_ids.shape[0]:
            if sorted_ids.shape[0] == 0:
                raise DataError("ratings reference reviewers but the dataset has none")
            rows = np.searchsorted(sorted_ids, self._reviewer_ids)
            rows = np.minimum(rows, sorted_ids.shape[0] - 1)
            bad = sorted_ids[rows] != self._reviewer_ids
            if bad.any():
                missing = sorted(set(self._reviewer_ids[bad].tolist()))[:5]
                raise DataError(f"ratings reference unknown reviewer ids {missing!r}")
        else:
            rows = np.array([], dtype=np.int64)
        for name in self.grouping_attributes:
            values = np.array(
                [reviewer.attribute(name) for reviewer in reviewers], dtype=object
            )[order]
            vocabulary, reviewer_codes = _factorize(values)
            self._vocabularies[name] = vocabulary
            self._attribute_codes[name] = (
                reviewer_codes[rows] if rows.shape[0] else np.array([], dtype=np.int32)
            )

    # -- sizes --------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self._scores.shape[0])

    @property
    def num_ratings(self) -> int:
        """Number of rating tuples in the store."""
        return len(self)

    def item_rating_count(self, item_id: int) -> int:
        """Number of ratings of one item (0 when unrated)."""
        positions = self._positions_by_item.get(item_id)
        return 0 if positions is None else int(positions.shape[0])

    def most_rated_items(self, limit: int = 10) -> List[Tuple[int, int]]:
        """Return ``(item_id, rating_count)`` pairs sorted by popularity."""
        counts = [
            (item_id, int(pos.shape[0]))
            for item_id, pos in self._positions_by_item.items()
        ]
        counts.sort(key=lambda pair: (-pair[1], pair[0]))
        return counts[:limit]

    # -- slicing ------------------------------------------------------------------

    def _slice_at(self, positions: np.ndarray) -> RatingSlice:
        return RatingSlice(
            item_ids=self._item_ids[positions],
            reviewer_ids=self._reviewer_ids[positions],
            scores=self._scores[positions],
            timestamps=self._timestamps[positions],
            code_columns={
                name: codes[positions]
                for name, codes in self._attribute_codes.items()
            },
            vocabularies=dict(self._vocabularies),
        )

    def slice_for_items(
        self,
        item_ids: Iterable[int],
        time_interval: Optional[Tuple[int, int]] = None,
        allow_empty: bool = False,
    ) -> RatingSlice:
        """Collect the rating tuples ``R_I`` of an item set as a columnar slice.

        Args:
            item_ids: items selected by the front-end query.
            time_interval: optional ``(start, end)`` timestamp restriction
                (the time-interval search setting of Figure 1).
            allow_empty: return an empty slice instead of raising when the
                selection matches no ratings.
        """
        wanted = [iid for iid in item_ids if iid in self._positions_by_item]
        if wanted:
            positions = np.concatenate([self._positions_by_item[iid] for iid in wanted])
            positions.sort()
        else:
            positions = np.array([], dtype=np.int64)
        rating_slice = self._slice_at(positions)
        if time_interval is not None:
            rating_slice = rating_slice.restrict_to_interval(*time_interval)
        if rating_slice.is_empty() and not allow_empty:
            raise EmptyRatingSetError(
                "the item selection matches no rating tuples"
            )
        return rating_slice

    def slice_all(self) -> RatingSlice:
        """Slice over every rating of the dataset.

        When the store carries a cuboid lattice, the slice's hint is upgraded
        to the whole-store mode: its rows are the store's rows in order, so
        the enumerator can read candidate cells straight out of the lattice.
        """
        rating_slice = self._slice_at(np.arange(len(self), dtype=np.int64))
        if self._lattice is not None:
            rating_slice.lattice_hint = LatticeHint(self._lattice, whole_store=True)
        return rating_slice

    def slice_rows(self, positions: np.ndarray) -> RatingSlice:
        """Slice over an explicit array of row positions (ascending)."""
        return self._slice_at(np.asarray(positions, dtype=np.int64))

    # -- maintained attribute indexes ---------------------------------------------

    def attribute_index(self, attribute: str) -> AttributeIndex:
        """The per-value aggregate/bitset index of one attribute (lazy, cached).

        Built once per snapshot on first use; compaction carries built
        indexes forward with delta updates instead of rebuilding them (see
        :mod:`repro.data.ingest`).  Concurrent cold callers share one build.
        """
        if attribute not in self._attribute_codes:
            raise DataError(f"store has no attribute column {attribute!r}")
        index = self._indexes.get(attribute)
        if index is not None:
            return index
        with self._index_lock:
            index = self._indexes.get(attribute)
            if index is None:
                index = AttributeIndex.build(
                    attribute,
                    self._attribute_codes[attribute],
                    self._scores,
                    int(self._vocabularies[attribute].shape[0]),
                )
                self._indexes[attribute] = index
        return index

    def built_indexes(self) -> Dict[str, AttributeIndex]:
        """Snapshot of the attribute indexes built so far (for compaction)."""
        with self._index_lock:
            return dict(self._indexes)

    # -- materialised cuboid lattice -----------------------------------------------

    def lattice(self) -> Optional[CuboidLattice]:
        """The attached cuboid lattice, or ``None`` when mining enumerates."""
        return self._lattice

    def attach_lattice(self, lattice: CuboidLattice) -> None:
        """Attach a materialised lattice; subsequent slices carry its hint."""
        self._lattice = lattice

    def detach_lattice(self) -> None:
        """Drop the lattice (memory-budget fallback); slices revert to DFS."""
        self._lattice = None

    def vocabulary_for(self, attribute: str) -> np.ndarray:
        """Sorted vocabulary of one grouping attribute."""
        try:
            return self._vocabularies[attribute]
        except KeyError as exc:
            raise DataError(f"store has no attribute column {attribute!r}") from exc

    def codes_for(self, attribute: str) -> np.ndarray:
        """Full-store ``int32`` code column of one grouping attribute."""
        try:
            return self._attribute_codes[attribute]
        except KeyError as exc:
            raise DataError(f"store has no attribute column {attribute!r}") from exc

    # -- aggregate helpers ----------------------------------------------------------

    def item_average(self, item_id: int) -> float:
        """Average score of one item (0.0 when unrated)."""
        positions = self._positions_by_item.get(item_id)
        if positions is None or positions.shape[0] == 0:
            return 0.0
        return float(self._scores[positions].mean())

    def global_average(self) -> float:
        """Average of every rating in the store (0.0 when empty)."""
        if len(self) == 0:
            return 0.0
        return float(self._scores.mean())
