"""Core entities of a collaborative rating site: the triple ⟨I, U, R⟩ (§2.1).

``Reviewer`` and ``Item`` are lightweight immutable records; ``Rating`` is the
triple ⟨item, reviewer, score⟩ extended with a timestamp so that the time
dimension of MapRat (time slider, §3.1) can be exercised.  ``RatingDataset``
owns the three collections, validates referential integrity and offers simple
lookup helpers.  Heavier indexing (inverted indexes per attribute value) lives
in :mod:`repro.data.storage`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import DataError
from .schema import DatasetSchema, age_group_for, default_schema


@dataclass(frozen=True)
class Reviewer:
    """A member of the reviewing community (``u ∈ U``).

    Attributes:
        reviewer_id: unique integer identifier.
        gender: ``"M"`` or ``"F"`` (MovieLens coding).
        age: MovieLens age code (lower bound of the band) or exact age.
        occupation: human-readable occupation label.
        zipcode: raw 5-digit zip code string.
        state: USPS state code resolved from the zip code (geo substrate).
        city: city resolved from the zip code (geo substrate).
    """

    reviewer_id: int
    gender: str
    age: int
    occupation: str
    zipcode: str
    state: str = ""
    city: str = ""

    @property
    def age_group(self) -> str:
        """The age band label used for group descriptions."""
        return age_group_for(self.age)

    def attribute(self, name: str) -> str:
        """Return the value of a reviewer attribute by name.

        Supported names: ``gender``, ``age_group``, ``occupation``, ``state``,
        ``city``, ``zipcode``.
        """
        if name == "gender":
            return self.gender
        if name == "age_group":
            return self.age_group
        if name == "occupation":
            return self.occupation
        if name == "state":
            return self.state
        if name == "city":
            return self.city
        if name == "zipcode":
            return self.zipcode
        raise DataError(f"reviewer has no attribute {name!r}")

    def attributes(self, names: Iterable[str]) -> Dict[str, str]:
        """Return a dict of the requested attribute values."""
        return {name: self.attribute(name) for name in names}


@dataclass(frozen=True)
class Item:
    """A rated item (``i ∈ I``), a movie in the demo dataset.

    Attributes:
        item_id: unique integer identifier.
        title: movie title (without the release year suffix).
        year: release year, 0 when unknown.
        genres: movie genres.
        actors: lead actors (IMDB enrichment, §3).
        directors: directors (IMDB enrichment, §3).
    """

    item_id: int
    title: str
    year: int = 0
    genres: Tuple[str, ...] = ()
    actors: Tuple[str, ...] = ()
    directors: Tuple[str, ...] = ()

    def attribute_values(self, name: str) -> Tuple[str, ...]:
        """Return all values of a (possibly multi-valued) item attribute."""
        if name == "title":
            return (self.title,)
        if name == "genre":
            return self.genres
        if name == "actor":
            return self.actors
        if name == "director":
            return self.directors
        if name == "year":
            return (str(self.year),) if self.year else ()
        raise DataError(f"item has no attribute {name!r}")


@dataclass(frozen=True)
class Rating:
    """A rating triple ⟨i, u, s⟩ with a timestamp (``r ∈ R``).

    Attributes:
        item_id: the rated item.
        reviewer_id: the rating reviewer.
        score: integer rating on the site's scale (1-5 for MovieLens).
        timestamp: seconds since the Unix epoch.
    """

    item_id: int
    reviewer_id: int
    score: float
    timestamp: int = 0

    @property
    def when(self) -> datetime:
        """Timestamp as an aware UTC datetime."""
        return datetime.fromtimestamp(self.timestamp, tz=timezone.utc)

    @property
    def year(self) -> int:
        """Calendar year of the rating, used by the time slider."""
        return self.when.year


class RatingDataset:
    """A collaborative rating site ``D = ⟨I, U, R⟩``.

    The dataset owns the reviewers, items and ratings, enforces referential
    integrity on construction and exposes simple lookups.  It is intentionally
    storage-agnostic: the mining layer goes through :class:`~repro.data.storage.RatingStore`
    which builds inverted indexes on top of a dataset.
    """

    def __init__(
        self,
        reviewers: Iterable[Reviewer],
        items: Iterable[Item],
        ratings: Iterable[Rating],
        schema: Optional[DatasetSchema] = None,
        name: str = "dataset",
        validate: bool = True,
    ) -> None:
        self.name = name
        self.schema = schema if schema is not None else default_schema()
        self._reviewers: Dict[int, Reviewer] = {r.reviewer_id: r for r in reviewers}
        self._items: Dict[int, Item] = {i.item_id: i for i in items}
        self._ratings: List[Rating] = list(ratings)
        if validate:
            self._validate()

    def _validate(self) -> None:
        for rating in self._ratings:
            if rating.item_id not in self._items:
                raise DataError(
                    f"rating references unknown item {rating.item_id}"
                )
            if rating.reviewer_id not in self._reviewers:
                raise DataError(
                    f"rating references unknown reviewer {rating.reviewer_id}"
                )
            self.schema.validate_rating(rating.score)

    # -- sizes -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ratings)

    @property
    def num_reviewers(self) -> int:
        """Number of reviewers ``|U|``."""
        return len(self._reviewers)

    @property
    def num_items(self) -> int:
        """Number of items ``|I|``."""
        return len(self._items)

    @property
    def num_ratings(self) -> int:
        """Number of rating tuples ``|R|``."""
        return len(self._ratings)

    # -- access ----------------------------------------------------------------

    def reviewers(self) -> Iterator[Reviewer]:
        """Iterate over the reviewers."""
        return iter(self._reviewers.values())

    def items(self) -> Iterator[Item]:
        """Iterate over the items."""
        return iter(self._items.values())

    def ratings(self) -> Iterator[Rating]:
        """Iterate over the rating tuples."""
        return iter(self._ratings)

    def reviewer(self, reviewer_id: int) -> Reviewer:
        """Look up one reviewer by id (raises :class:`DataError` when unknown)."""
        try:
            return self._reviewers[reviewer_id]
        except KeyError as exc:
            raise DataError(f"unknown reviewer {reviewer_id}") from exc

    def item(self, item_id: int) -> Item:
        """Look up one item by id (raises :class:`DataError` when unknown)."""
        try:
            return self._items[item_id]
        except KeyError as exc:
            raise DataError(f"unknown item {item_id}") from exc

    def has_item(self, item_id: int) -> bool:
        """True when the catalogue contains ``item_id``."""
        return item_id in self._items

    def has_reviewer(self, reviewer_id: int) -> bool:
        """True when the community contains ``reviewer_id``."""
        return reviewer_id in self._reviewers

    def items_by_title(self, title: str) -> List[Item]:
        """Return items whose title matches ``title`` case-insensitively."""
        wanted = title.strip().lower()
        return [item for item in self._items.values() if item.title.lower() == wanted]

    def ratings_for_items(self, item_ids: Iterable[int]) -> List[Rating]:
        """Return all rating tuples of the given items (``R_I`` in §2.2)."""
        wanted = set(item_ids)
        return [r for r in self._ratings if r.item_id in wanted]

    def ratings_for_reviewer(self, reviewer_id: int) -> List[Rating]:
        """All rating tuples authored by one reviewer."""
        return [r for r in self._ratings if r.reviewer_id == reviewer_id]

    # -- statistics --------------------------------------------------------------

    def global_average(self) -> float:
        """Average of all ratings — the single aggregate the paper criticises."""
        if not self._ratings:
            return 0.0
        return sum(r.score for r in self._ratings) / len(self._ratings)

    def item_average(self, item_id: int) -> float:
        """Average score of one item (0.0 when unrated)."""
        scores = [r.score for r in self._ratings if r.item_id == item_id]
        if not scores:
            return 0.0
        return sum(scores) / len(scores)

    def rating_counts_by_item(self) -> Dict[int, int]:
        """Number of ratings per item id."""
        counts: Dict[int, int] = {}
        for rating in self._ratings:
            counts[rating.item_id] = counts.get(rating.item_id, 0) + 1
        return counts

    def time_range(self) -> Tuple[int, int]:
        """Return the (min, max) rating timestamps, (0, 0) when empty."""
        if not self._ratings:
            return (0, 0)
        stamps = [r.timestamp for r in self._ratings]
        return (min(stamps), max(stamps))

    # -- derivation ---------------------------------------------------------------

    def restricted_to_items(self, item_ids: Iterable[int], name: str = "") -> "RatingDataset":
        """Return a new dataset containing only ratings of the given items."""
        wanted = set(item_ids)
        ratings = [r for r in self._ratings if r.item_id in wanted]
        reviewer_ids = {r.reviewer_id for r in ratings}
        return RatingDataset(
            reviewers=[self._reviewers[rid] for rid in reviewer_ids],
            items=[self._items[iid] for iid in wanted if iid in self._items],
            ratings=ratings,
            schema=self.schema,
            name=name or f"{self.name}[items={len(wanted)}]",
            validate=False,
        )

    def restricted_to_interval(
        self, start_timestamp: int, end_timestamp: int, name: str = ""
    ) -> "RatingDataset":
        """Return a new dataset with ratings inside ``[start, end]`` only."""
        if end_timestamp < start_timestamp:
            raise DataError("time interval end precedes start")
        ratings = [
            r
            for r in self._ratings
            if start_timestamp <= r.timestamp <= end_timestamp
        ]
        reviewer_ids = {r.reviewer_id for r in ratings}
        item_ids = {r.item_id for r in ratings}
        return RatingDataset(
            reviewers=[self._reviewers[rid] for rid in reviewer_ids],
            items=[self._items[iid] for iid in item_ids],
            ratings=ratings,
            schema=self.schema,
            name=name or f"{self.name}[interval]",
            validate=False,
        )

    def describe(self) -> Dict[str, object]:
        """Small summary dict used by reports and the JSON API."""
        lo, hi = self.time_range()
        return {
            "name": self.name,
            "reviewers": self.num_reviewers,
            "items": self.num_items,
            "ratings": self.num_ratings,
            "global_average": round(self.global_average(), 4),
            "time_range": [lo, hi],
        }
