"""Materialized cuboid lattice: per-combination cell statistics for cold mining.

The per-value :class:`~repro.data.storage.AttributeIndex` answers "how do the
rows of *one* attribute value aggregate?".  Candidate enumeration needs the
same answer for every attribute **combination** up to the description-length
bound: the support, rating sum and member rows of every cell ``(gender=F,
state=CA)``, ``(age_group=25-34, occupation=student, state=NY)``, and so on.
:class:`CuboidLattice` materialises exactly that — one columnar *cuboid* per
attribute combination — so a cold ``explain``/``geo_explain`` becomes a
vectorised filter over precomputed cells instead of a recursive walk that
re-sorts the store's rows on every request.

Representation (per cuboid, i.e. per attribute combination):

* ``keys``    — ``(num_cells, k)`` ``int32`` value codes, rows sorted by the
  cell's linear id (row-major over the vocabulary sizes), which equals the
  lexicographic order of the code tuples;
* ``counts`` / ``sums`` — per-cell support and rating sum (one ``np.unique``
  + ``np.bincount`` pass at build time);
* ``offsets`` / ``positions`` — a CSR layout of the member rows: cell ``i``
  owns ``positions[offsets[i]:offsets[i+1]]``, ascending store-row positions.
  ``positions`` is a permutation of ``arange(num_rows)`` (every row lives in
  exactly one cell per cuboid), so the resident cost is linear in the store —
  about ``num_cuboids × num_rows × 8`` bytes — where per-cell packed bitsets
  would be quadratic-ish (``num_cells × num_rows / 8`` bytes, hundreds of MB
  on a medium store).  Packed coverage bitsets are therefore derived **on
  demand** per cell via :meth:`CuboidCells.packed_bits`, never stored.

Incremental maintenance mirrors ``AttributeIndex.updated``: compaction passes
the per-attribute vocabulary remaps plus the appended rows' code columns, and
each cuboid merges delta cells into its sorted cell list with searchsorted
scatters and delta bincounts — no full-store rescan.  Counts, keys and row
positions are integers, so the delta-updated lattice is bit-identical to a
rebuild; the float ``sums`` carry the same exactness contract as the
attribute index (exact for binary-representable scores).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..config import GEO_ATTRIBUTE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (storage imports us)
    from .storage import RatingStore

#: Attributes the lattice materialises by default: every mining surface
#: (item explain, geo explain, region drill) draws its grouping attributes
#: from this set.  ``zipcode`` is deliberately excluded — its vocabulary is
#: quasi-unique per reviewer, so its cuboids would be all-singleton noise.
DEFAULT_LATTICE_ATTRIBUTES: Tuple[str, ...] = (
    "gender", "age_group", "occupation", "state", "city",
)

#: Largest attribute combination materialised outright — matches the paper's
#: ``max_description_length`` default of 3 attribute/value pairs per label.
DEFAULT_MAX_ARITY = 3


def _linear_ids(columns: Sequence[np.ndarray], dims: Tuple[int, ...]) -> np.ndarray:
    """Row-major linear cell id of each row; empty-safe, always ``int64``."""
    if not columns or columns[0].shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    return np.ravel_multi_index(tuple(columns), dims).astype(np.int64, copy=False)


def _keys_from_cells(cells: np.ndarray, dims: Tuple[int, ...]) -> np.ndarray:
    """Unpack sorted linear cell ids back into ``(num_cells, k)`` code rows."""
    if cells.shape[0] == 0:
        return np.empty((0, len(dims)), dtype=np.int32)
    return np.stack(np.unravel_index(cells, dims), axis=1).astype(np.int32, copy=False)


def _offsets_from_counts(counts: np.ndarray) -> np.ndarray:
    """CSR offsets (length ``num_cells + 1``) from per-cell counts."""
    offsets = np.zeros(counts.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def _sorted_cells(
    lin: np.ndarray, scores: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group rows by linear cell id: ``(cells, counts, sums, order)``.

    ``order`` is the stable argsort of ``lin`` — rows sorted by cell, and
    ascending within each cell, which is exactly the CSR ``positions`` layout.
    """
    if lin.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=np.float64), empty.copy()
    order = np.argsort(lin, kind="stable").astype(np.int64, copy=False)
    cells, counts = np.unique(lin, return_counts=True)
    inverse = np.searchsorted(cells, lin)
    sums = np.bincount(inverse, weights=scores, minlength=cells.shape[0])
    return cells, counts.astype(np.int64, copy=False), sums, order


class CuboidCells:
    """Columnar cell table of one cuboid (one attribute combination).

    Cells are sorted by their row-major linear id, i.e. lexicographically by
    the ``(code_0, ..., code_{k-1})`` tuple in the cuboid's attribute order.
    """

    __slots__ = ("attributes", "dims", "keys", "counts", "sums", "offsets", "positions")

    def __init__(
        self,
        attributes: Tuple[str, ...],
        dims: Tuple[int, ...],
        keys: np.ndarray,
        counts: np.ndarray,
        sums: np.ndarray,
        offsets: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        self.attributes = tuple(attributes)
        self.dims = tuple(int(d) for d in dims)
        self.keys = keys
        self.counts = counts
        self.sums = sums
        self.offsets = offsets
        self.positions = positions

    @property
    def num_cells(self) -> int:
        """Number of non-empty cells in the cuboid."""
        return int(self.counts.shape[0])

    def cell_positions(self, index: int) -> np.ndarray:
        """Ascending store-row positions of one cell (zero-copy CSR view)."""
        return self.positions[int(self.offsets[index]) : int(self.offsets[index + 1])]

    def packed_bits(self, index: int, num_rows: int) -> np.ndarray:
        """Packed coverage bitset of one cell, derived on demand.

        Stored bitsets would cost ``num_cells × num_rows / 8`` bytes per
        cuboid; deriving them from the CSR positions keeps the lattice linear
        in the store while serving the same ``uint8`` layout as
        :func:`repro.data.storage._pack_positions`.
        """
        member = np.zeros(int(num_rows), dtype=bool)
        positions = self.cell_positions(index)
        if positions.shape[0]:
            member[positions] = True
        return np.packbits(member)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the cuboid's five arrays."""
        return int(
            self.keys.nbytes
            + self.counts.nbytes
            + self.sums.nbytes
            + self.offsets.nbytes
            + self.positions.nbytes
        )

    @classmethod
    def build(
        cls,
        attributes: Tuple[str, ...],
        dims: Tuple[int, ...],
        code_columns: Mapping[str, np.ndarray],
        scores: np.ndarray,
    ) -> "CuboidCells":
        """Build the cuboid from full-store code columns (one sort pass)."""
        columns = [code_columns[a].astype(np.int64, copy=False) for a in attributes]
        lin = _linear_ids(columns, dims)
        cells, counts, sums, order = _sorted_cells(lin, scores)
        return cls(
            attributes,
            dims,
            _keys_from_cells(cells, dims),
            counts,
            sums,
            _offsets_from_counts(counts),
            order,
        )

    def updated(
        self,
        remaps: Sequence[np.ndarray],
        dims: Tuple[int, ...],
        delta_columns: Sequence[np.ndarray],
        delta_scores: np.ndarray,
        old_num_rows: int,
    ) -> "CuboidCells":
        """Delta-merge appended rows into the cuboid (the compaction path).

        ``remaps[j][old_code] -> new_code`` re-homes the existing cells after
        vocabulary growth.  The remaps are monotone (vocabularies stay
        sorted), so the remapped cell list is still sorted and is merged with
        the delta cells by a single ``np.union1d`` + two searchsorted
        scatters.  Appended rows take store positions ``old_num_rows + i``,
        which are larger than every existing position — so concatenating each
        cell's delta segment after its existing segment keeps the CSR
        positions ascending per cell, bit-identical to a rebuild.
        """
        k = len(self.attributes)
        if self.keys.shape[0]:
            remapped = [
                remaps[j][self.keys[:, j].astype(np.int64)].astype(np.int64)
                for j in range(k)
            ]
            old_cells = _linear_ids(remapped, dims)
        else:
            old_cells = np.empty(0, dtype=np.int64)
        delta = [c.astype(np.int64, copy=False) for c in delta_columns]
        dlin = _linear_ids(delta, dims)
        dcells, dcounts, dsums, dorder = _sorted_cells(dlin, delta_scores)

        merged = np.union1d(old_cells, dcells)
        old_at = np.searchsorted(merged, old_cells)
        delta_at = np.searchsorted(merged, dcells)
        counts = np.zeros(merged.shape[0], dtype=np.int64)
        counts[old_at] = self.counts
        counts[delta_at] += dcounts
        sums = np.zeros(merged.shape[0], dtype=np.float64)
        sums[old_at] = self.sums
        sums[delta_at] += dsums
        offsets = _offsets_from_counts(counts)

        positions = np.empty(int(offsets[-1]), dtype=np.int64)
        if self.positions.shape[0]:
            # Existing segments land first in their (possibly shifted) cells.
            shift = offsets[:-1][old_at] - self.offsets[:-1]
            dest = np.arange(self.positions.shape[0], dtype=np.int64)
            dest += np.repeat(shift, self.counts)
            positions[dest] = self.positions
        if dorder.shape[0]:
            old_in_cell = np.zeros(merged.shape[0], dtype=np.int64)
            old_in_cell[old_at] = self.counts
            delta_starts = offsets[:-1][delta_at] + old_in_cell[delta_at]
            shift_d = delta_starts - _offsets_from_counts(dcounts)[:-1]
            dest_d = np.arange(dorder.shape[0], dtype=np.int64)
            dest_d += np.repeat(shift_d, dcounts)
            positions[dest_d] = dorder + int(old_num_rows)
        return CuboidCells(
            self.attributes,
            dims,
            _keys_from_cells(merged, dims),
            counts,
            sums,
            offsets,
            positions,
        )


class CuboidLattice:
    """Epoch-versioned set of materialised cuboids over a rating store.

    Holds one :class:`CuboidCells` per attribute combination of size up to
    ``max_arity``, plus the size ``max_arity + 1`` combinations that contain
    the region attribute — those serve region-restricted mining, where the
    region pins one attribute and the description uses up to ``max_arity``
    more.  Built once per epoch from the store's code columns; compactions
    carry it forward with :meth:`updated` (delta merges, no rescan).
    """

    def __init__(
        self,
        attributes: Tuple[str, ...],
        max_arity: int,
        region_attribute: str,
        num_rows: int,
        epoch: int,
        cuboids: Dict[Tuple[str, ...], CuboidCells],
    ) -> None:
        self.attributes = tuple(attributes)
        self.max_arity = int(max_arity)
        self.region_attribute = region_attribute
        self.num_rows = int(num_rows)
        self.epoch = int(epoch)
        self._cuboids = dict(cuboids)
        #: Materialised candidate lists keyed by the enumerator's memo key
        #: (slice identity + enumeration parameters).  Epoch-scoped for free:
        #: compaction and shm attach construct a *new* lattice object, so the
        #: memo never outlives the rows it describes.  Process-local — never
        #: exported through shared memory.
        self.candidate_memo: Dict[Tuple, Tuple] = {}

    @staticmethod
    def combinations(
        attributes: Sequence[str],
        max_arity: int = DEFAULT_MAX_ARITY,
        region_attribute: str = GEO_ATTRIBUTE,
    ) -> List[Tuple[str, ...]]:
        """The attribute combinations a lattice over ``attributes`` holds."""
        combos: List[Tuple[str, ...]] = []
        for size in range(1, min(max_arity, len(attributes)) + 1):
            combos.extend(itertools.combinations(attributes, size))
        if region_attribute in attributes and max_arity + 1 <= len(attributes):
            combos.extend(
                combo
                for combo in itertools.combinations(attributes, max_arity + 1)
                if region_attribute in combo
            )
        return combos

    @classmethod
    def build(
        cls,
        store: "RatingStore",
        attributes: Optional[Sequence[str]] = None,
        max_arity: int = DEFAULT_MAX_ARITY,
        region_attribute: str = GEO_ATTRIBUTE,
    ) -> "CuboidLattice":
        """Materialise the lattice over a store's code columns.

        ``attributes`` defaults to the store's grouping attributes restricted
        to :data:`DEFAULT_LATTICE_ATTRIBUTES` (store order preserved).  Each
        cuboid costs one stable argsort + one ``np.unique`` pass.
        """
        if attributes is None:
            attributes = tuple(
                a for a in store.grouping_attributes if a in DEFAULT_LATTICE_ATTRIBUTES
            )
        attributes = tuple(attributes)
        code_columns = {a: store.codes_for(a) for a in attributes}
        dims_of = {a: int(store.vocabulary_for(a).shape[0]) for a in attributes}
        scores = store._scores  # sibling-module access, same as the compactor
        cuboids: Dict[Tuple[str, ...], CuboidCells] = {}
        for combo in cls.combinations(attributes, max_arity, region_attribute):
            dims = tuple(dims_of[a] for a in combo)
            cuboids[combo] = CuboidCells.build(combo, dims, code_columns, scores)
        return cls(
            attributes, max_arity, region_attribute, len(store), store.epoch, cuboids
        )

    # -- lookup -------------------------------------------------------------------

    @property
    def cuboids(self) -> Dict[Tuple[str, ...], CuboidCells]:
        """The cuboid table, keyed by canonical attribute combination."""
        return self._cuboids

    def cells_for(self, attrs: Iterable[str]) -> Optional[CuboidCells]:
        """The cuboid of an attribute set (any order); ``None`` if absent."""
        wanted = set(attrs)
        key = tuple(a for a in self.attributes if a in wanted)
        if len(key) != len(wanted):
            return None
        return self._cuboids.get(key)

    # -- sizes --------------------------------------------------------------------

    @property
    def num_cuboids(self) -> int:
        """Number of materialised cuboids."""
        return len(self._cuboids)

    @property
    def num_cells(self) -> int:
        """Total non-empty cells across every cuboid."""
        return sum(c.num_cells for c in self._cuboids.values())

    @property
    def nbytes(self) -> int:
        """Resident bytes across every cuboid's arrays."""
        return sum(c.nbytes for c in self._cuboids.values())

    @staticmethod
    def estimate_nbytes(
        num_rows: int,
        attributes: Sequence[str] = DEFAULT_LATTICE_ATTRIBUTES,
        max_arity: int = DEFAULT_MAX_ARITY,
        region_attribute: str = GEO_ATTRIBUTE,
    ) -> int:
        """Pre-build resident-size estimate (positions-dominated heuristic).

        Each cuboid's ``positions`` array is exactly ``num_rows`` ``int64``
        entries; the cell-level arrays add a data-dependent fraction on top,
        approximated here at 25%.  Used by the serving layer's memory-budget
        gate before paying for a build.
        """
        combos = len(
            CuboidLattice.combinations(attributes, max_arity, region_attribute)
        )
        return int(combos * num_rows * 10)

    # -- maintenance --------------------------------------------------------------

    def updated(
        self,
        remaps: Mapping[str, np.ndarray],
        vocab_sizes: Mapping[str, int],
        delta_code_columns: Mapping[str, np.ndarray],
        delta_scores: np.ndarray,
        epoch: int,
    ) -> "CuboidLattice":
        """A new lattice for the compacted store: per-cuboid delta merges.

        Arguments mirror ``AttributeIndex.updated``: ``remaps`` re-home old
        codes after vocabulary growth, ``delta_code_columns`` hold the
        appended rows' codes in the new code space, ``delta_scores`` their
        ratings.  Every cuboid is merged independently; see
        :meth:`CuboidCells.updated` for the invariants.
        """
        cuboids: Dict[Tuple[str, ...], CuboidCells] = {}
        for combo, cub in self._cuboids.items():
            dims = tuple(int(vocab_sizes[a]) for a in combo)
            cuboids[combo] = cub.updated(
                [remaps[a] for a in combo],
                dims,
                [delta_code_columns[a] for a in combo],
                delta_scores,
                self.num_rows,
            )
        return CuboidLattice(
            self.attributes,
            self.max_arity,
            self.region_attribute,
            self.num_rows + int(delta_scores.shape[0]),
            epoch,
            cuboids,
        )


@dataclass
class LatticeHint:
    """How a :class:`~repro.data.storage.RatingSlice` relates to the lattice.

    Attached to slices cut from a lattice-carrying store so the candidate
    enumerator can pick its fast path:

    * ``whole_store`` — the slice is the store's full row range in order;
      cuboid cells can be read out directly (sub-ms cold path).
    * ``restrict_attribute``/``restrict_code`` + ``store_positions`` — the
      slice is all store rows of one attribute value (a region), in ascending
      store order; cells come from the cuboid extended by that attribute,
      with store rows mapped onto slice rows by one ``searchsorted``.
    * neither — the fallback ``scan`` mode: a flat vectorised cell grouping
      over the slice's own code columns, taken when a hinted slice no longer
      matches its lattice (stale dims after a detach, a missing cuboid).
      Arbitrary subsets (item selections, restrictions) carry **no** hint at
      all — the DFS kernel beats the flat scan on those shapes.
    """

    lattice: CuboidLattice
    whole_store: bool = False
    restrict_attribute: Optional[str] = None
    restrict_code: Optional[int] = None
    store_positions: Optional[np.ndarray] = field(default=None, repr=False)

    def scan_only(self) -> "LatticeHint":
        """The hint downgraded to the flat-scan mode (after a restriction)."""
        return LatticeHint(self.lattice)
