"""Reader/writer for the MovieLens-1M on-disk format.

The demo dataset is the GroupLens "Million rating data set" (§3): three
``::``-separated files,

* ``users.dat``   — ``UserID::Gender::Age::Occupation::Zip-code``
* ``movies.dat``  — ``MovieID::Title (Year)::Genre|Genre|...``
* ``ratings.dat`` — ``UserID::MovieID::Rating::Timestamp``

``load_movielens_directory`` parses a directory in that layout into a
:class:`~repro.data.model.RatingDataset`, resolving each reviewer's state and
city from the zip code through the geo substrate.  ``write_movielens_directory``
performs the inverse, which the tests use for a lossless round-trip and which
lets users export synthetic datasets for external tools.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import DatasetFormatError
from ..geo.states import ALL_STATE_CODES
from ..geo.zipcodes import ZipResolver
from .imdb import SyntheticImdbCatalog
from .model import Item, Rating, RatingDataset, Reviewer
from .schema import OCCUPATIONS, default_schema

SEPARATOR = "::"
_TITLE_YEAR_RE = re.compile(r"^(?P<title>.*)\s+\((?P<year>\d{4})\)\s*$")

#: Reverse occupation lookup used when writing datasets back to disk.
_OCCUPATION_CODES: Dict[str, int] = {label: code for code, label in OCCUPATIONS.items()}


def _split(line: str, expected_fields: int, path: Path, line_number: int) -> List[str]:
    parts = line.rstrip("\n").split(SEPARATOR)
    if len(parts) != expected_fields:
        raise DatasetFormatError(
            f"{path.name}:{line_number}: expected {expected_fields} fields, "
            f"got {len(parts)}"
        )
    return parts


def parse_title(raw_title: str) -> Tuple[str, int]:
    """Split a MovieLens title like ``"Toy Story (1995)"`` into (title, year)."""
    match = _TITLE_YEAR_RE.match(raw_title.strip())
    if not match:
        return raw_title.strip(), 0
    return match.group("title"), int(match.group("year"))


def load_users_file(path: Path, resolver: Optional[ZipResolver] = None) -> List[Reviewer]:
    """Parse ``users.dat`` into reviewers with resolved state/city."""
    resolver = resolver or ZipResolver()
    reviewers: List[Reviewer] = []
    with open(path, encoding="latin-1") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            user_id, gender, age, occupation_code, zipcode = _split(
                line, 5, path, line_number
            )
            try:
                occupation = OCCUPATIONS[int(occupation_code)]
            except (KeyError, ValueError) as exc:
                raise DatasetFormatError(
                    f"{path.name}:{line_number}: bad occupation code {occupation_code!r}"
                ) from exc
            state, city = resolver.resolve(zipcode)
            reviewers.append(
                Reviewer(
                    reviewer_id=int(user_id),
                    gender=gender,
                    age=int(age),
                    occupation=occupation,
                    zipcode=zipcode,
                    state=state,
                    city=city,
                )
            )
    return reviewers


def load_movies_file(path: Path, enrich: bool = True) -> List[Item]:
    """Parse ``movies.dat``; optionally add IMDB-style actor/director credits."""
    catalog = SyntheticImdbCatalog()
    items: List[Item] = []
    with open(path, encoding="latin-1") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            movie_id, raw_title, raw_genres = _split(line, 3, path, line_number)
            title, year = parse_title(raw_title)
            genres = tuple(g for g in raw_genres.strip().split("|") if g)
            item = Item(item_id=int(movie_id), title=title, year=year, genres=genres)
            items.append(catalog.enrich(item) if enrich else item)
    return items


def load_ratings_file(path: Path) -> List[Rating]:
    """Parse ``ratings.dat`` into rating triples."""
    ratings: List[Rating] = []
    with open(path, encoding="latin-1") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            user_id, movie_id, score, timestamp = _split(line, 4, path, line_number)
            ratings.append(
                Rating(
                    item_id=int(movie_id),
                    reviewer_id=int(user_id),
                    score=float(score),
                    timestamp=int(timestamp),
                )
            )
    return ratings


def load_movielens_directory(
    directory: str | Path,
    name: str = "movielens-1m",
    enrich: bool = True,
    validate: bool = True,
) -> RatingDataset:
    """Load a MovieLens-1M style directory into a :class:`RatingDataset`.

    Args:
        directory: directory containing ``users.dat``, ``movies.dat`` and
            ``ratings.dat``.
        name: dataset name.
        enrich: add synthetic IMDB credits so actor/director queries work.
        validate: check referential integrity after loading.
    """
    base = Path(directory)
    users_path = base / "users.dat"
    movies_path = base / "movies.dat"
    ratings_path = base / "ratings.dat"
    for path in (users_path, movies_path, ratings_path):
        if not path.exists():
            raise DatasetFormatError(f"missing MovieLens file: {path}")
    reviewers = load_users_file(users_path)
    items = load_movies_file(movies_path, enrich=enrich)
    ratings = load_ratings_file(ratings_path)
    schema = default_schema(states=ALL_STATE_CODES)
    return RatingDataset(
        reviewers=reviewers,
        items=items,
        ratings=ratings,
        schema=schema,
        name=name,
        validate=validate,
    )


def write_movielens_directory(dataset: RatingDataset, directory: str | Path) -> None:
    """Write a dataset back out in the MovieLens-1M ``.dat`` layout."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    with open(base / "users.dat", "w", encoding="latin-1") as handle:
        for reviewer in sorted(dataset.reviewers(), key=lambda r: r.reviewer_id):
            occupation_code = _OCCUPATION_CODES.get(reviewer.occupation, 0)
            handle.write(
                SEPARATOR.join(
                    [
                        str(reviewer.reviewer_id),
                        reviewer.gender,
                        str(reviewer.age),
                        str(occupation_code),
                        reviewer.zipcode,
                    ]
                )
                + "\n"
            )
    with open(base / "movies.dat", "w", encoding="latin-1") as handle:
        for item in sorted(dataset.items(), key=lambda i: i.item_id):
            title = f"{item.title} ({item.year})" if item.year else item.title
            handle.write(
                SEPARATOR.join([str(item.item_id), title, "|".join(item.genres)]) + "\n"
            )
    with open(base / "ratings.dat", "w", encoding="latin-1") as handle:
        for rating in dataset.ratings():
            handle.write(
                SEPARATOR.join(
                    [
                        str(rating.reviewer_id),
                        str(rating.item_id),
                        f"{rating.score:g}",
                        str(rating.timestamp),
                    ]
                )
                + "\n"
            )
