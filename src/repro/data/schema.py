"""Attribute schemas for reviewers and items.

The demo uses the MovieLens-1M coding of reviewer demographics (§3): seven age
bands, two genders, twenty-one occupations and a free-form zip code, plus the
locations derived from the zip code (state and city).  Item attributes are the
movie title, genre, and the IMDB enrichment attributes actor and director.

The schema objects defined here are consulted by

* the synthetic generator (to emit valid values),
* the MovieLens loader (to validate parsed rows),
* the data-cube candidate enumerator (to know which values an attribute can
  take), and
* the query parser (to reject unknown attributes early).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..errors import SchemaError

#: MovieLens-1M age codes and their human-readable band labels.
AGE_GROUPS: Mapping[int, str] = {
    1: "Under 18",
    18: "18-24",
    25: "25-34",
    35: "35-44",
    45: "45-49",
    50: "50-55",
    56: "56+",
}

#: MovieLens-1M occupation codes.
OCCUPATIONS: Mapping[int, str] = {
    0: "other",
    1: "academic/educator",
    2: "artist",
    3: "clerical/admin",
    4: "college/grad student",
    5: "customer service",
    6: "doctor/health care",
    7: "executive/managerial",
    8: "farmer",
    9: "homemaker",
    10: "K-12 student",
    11: "lawyer",
    12: "programmer",
    13: "retired",
    14: "sales/marketing",
    15: "scientist",
    16: "self-employed",
    17: "technician/engineer",
    18: "tradesman/craftsman",
    19: "unemployed",
    20: "writer",
}

GENDERS: Sequence[str] = ("M", "F")

#: The 18 MovieLens-1M genres.
GENRES: Sequence[str] = (
    "Action",
    "Adventure",
    "Animation",
    "Children's",
    "Comedy",
    "Crime",
    "Documentary",
    "Drama",
    "Fantasy",
    "Film-Noir",
    "Horror",
    "Musical",
    "Mystery",
    "Romance",
    "Sci-Fi",
    "Thriller",
    "War",
    "Western",
)

#: Reviewer attributes the mining layer may group on, in display order.
REVIEWER_ATTRIBUTES: Sequence[str] = (
    "gender",
    "age_group",
    "occupation",
    "state",
    "city",
)

#: Item attributes the query layer may search over, in display order.
ITEM_ATTRIBUTES: Sequence[str] = ("title", "genre", "actor", "director", "year")


def age_group_for(age_code: int) -> str:
    """Return the band label for a raw MovieLens age code or exact age.

    MovieLens stores the *lower bound* of the band (1, 18, 25, ...).  Exact
    ages (e.g. 42) are also accepted and folded into the enclosing band, which
    the synthetic generator relies on.
    """
    if age_code in AGE_GROUPS:
        return AGE_GROUPS[age_code]
    if age_code < 1:
        raise SchemaError(f"age code must be positive, got {age_code}")
    label = AGE_GROUPS[1]
    for lower_bound, band in sorted(AGE_GROUPS.items()):
        if age_code >= lower_bound:
            label = band
    return label


@dataclass(frozen=True)
class AttributeSchema:
    """Schema of one categorical attribute.

    Attributes:
        name: attribute identifier (e.g. ``"gender"``).
        entity: ``"reviewer"`` or ``"item"``.
        values: the closed domain of the attribute, or an empty tuple when the
            domain is open (e.g. ``title``, ``zipcode``).
        description: short human-readable explanation used in reports.
    """

    name: str
    entity: str
    values: tuple[str, ...] = ()
    description: str = ""

    def is_open_domain(self) -> bool:
        """True when any string is an acceptable value."""
        return not self.values

    def validate(self, value: str) -> str:
        """Return ``value`` if it belongs to the domain, raise otherwise."""
        if self.is_open_domain():
            return value
        if value not in self.values:
            raise SchemaError(
                f"{value!r} is not a valid value for attribute {self.name!r}"
            )
        return value


@dataclass(frozen=True)
class DatasetSchema:
    """Complete reviewer + item schema of a collaborative rating site."""

    reviewer_attributes: tuple[AttributeSchema, ...]
    item_attributes: tuple[AttributeSchema, ...]
    rating_min: int = 1
    rating_max: int = 5
    _by_name: Mapping[str, AttributeSchema] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        mapping = {a.name: a for a in self.reviewer_attributes}
        mapping.update({a.name: a for a in self.item_attributes})
        object.__setattr__(self, "_by_name", mapping)

    def attribute(self, name: str) -> AttributeSchema:
        """Return the schema of ``name`` or raise :class:`SchemaError`."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchemaError(f"unknown attribute {name!r}") from exc

    def has_attribute(self, name: str) -> bool:
        """True when the schema defines attribute ``name``."""
        return name in self._by_name

    def reviewer_attribute_names(self) -> tuple[str, ...]:
        """Names of the reviewer attributes, in schema order."""
        return tuple(a.name for a in self.reviewer_attributes)

    def item_attribute_names(self) -> tuple[str, ...]:
        """Names of the item attributes, in schema order."""
        return tuple(a.name for a in self.item_attributes)

    def validate_rating(self, score: float) -> float:
        """Check that a rating score falls on the site's rating scale."""
        if not self.rating_min <= score <= self.rating_max:
            raise SchemaError(
                f"rating {score} outside scale "
                f"[{self.rating_min}, {self.rating_max}]"
            )
        return score


def default_schema(states: Iterable[str] = (), cities: Iterable[str] = ()) -> DatasetSchema:
    """Build the MovieLens-1M + IMDB schema used by the demo (§3).

    Args:
        states: closed domain for the ``state`` attribute; empty means open.
        cities: closed domain for the ``city`` attribute; empty means open.
    """
    reviewer_attrs = (
        AttributeSchema("gender", "reviewer", tuple(GENDERS), "Reviewer gender"),
        AttributeSchema(
            "age_group", "reviewer", tuple(AGE_GROUPS.values()), "Reviewer age band"
        ),
        AttributeSchema(
            "occupation",
            "reviewer",
            tuple(OCCUPATIONS.values()),
            "Reviewer occupation (MovieLens coding)",
        ),
        AttributeSchema("state", "reviewer", tuple(states), "US state of residence"),
        AttributeSchema("city", "reviewer", tuple(cities), "City of residence"),
        AttributeSchema("zipcode", "reviewer", (), "Raw 5-digit zip code"),
    )
    item_attrs = (
        AttributeSchema("title", "item", (), "Movie title"),
        AttributeSchema("genre", "item", tuple(GENRES), "Movie genre"),
        AttributeSchema("actor", "item", (), "Lead actor (IMDB enrichment)"),
        AttributeSchema("director", "item", (), "Director (IMDB enrichment)"),
        AttributeSchema("year", "item", (), "Release year"),
    )
    return DatasetSchema(reviewer_attrs, item_attrs)
