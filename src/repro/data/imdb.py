"""Synthetic IMDB enrichment: actors and directors for the movie catalogue.

The demo "integrates the MovieLens data with information available from IMDB,
in order to include additional item attributes such as actors and directors"
(§3).  The real join needs the IMDB dumps; offline we reproduce the *effect* —
every movie gains ``actor`` and ``director`` attributes that the query layer
can search over (example queries from §3.2: "Tom Hanks", "thriller movies
directed by Steven Spielberg").

Well-known seed titles get their real principal credits so the paper's example
queries return the expected movies; all other movies receive deterministic
assignments from a fixed name pool (a hash of the movie id picks the names, so
enrichment is stable across runs and processes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .model import Item, RatingDataset

#: Real principal credits for seed titles used in the paper's narrative.
KNOWN_CREDITS: Mapping[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    # title: (actors, directors)
    "Toy Story": (("Tom Hanks", "Tim Allen"), ("John Lasseter",)),
    "Toy Story 2": (("Tom Hanks", "Tim Allen"), ("John Lasseter",)),
    "The Twilight Saga: Eclipse": (
        ("Kristen Stewart", "Robert Pattinson"),
        ("David Slade",),
    ),
    "The Social Network": (("Jesse Eisenberg", "Andrew Garfield"), ("David Fincher",)),
    "The Lord of the Rings: The Fellowship of the Ring": (
        ("Elijah Wood", "Ian McKellen"),
        ("Peter Jackson",),
    ),
    "The Lord of the Rings: The Two Towers": (
        ("Elijah Wood", "Ian McKellen"),
        ("Peter Jackson",),
    ),
    "The Lord of the Rings: The Return of the King": (
        ("Elijah Wood", "Ian McKellen"),
        ("Peter Jackson",),
    ),
    "Jurassic Park": (("Sam Neill", "Laura Dern"), ("Steven Spielberg",)),
    "Jaws": (("Roy Scheider", "Richard Dreyfuss"), ("Steven Spielberg",)),
    "Minority Report": (("Tom Cruise", "Colin Farrell"), ("Steven Spielberg",)),
    "Saving Private Ryan": (("Tom Hanks", "Matt Damon"), ("Steven Spielberg",)),
    "Forrest Gump": (("Tom Hanks", "Robin Wright"), ("Robert Zemeckis",)),
    "Apollo 13": (("Tom Hanks", "Kevin Bacon"), ("Ron Howard",)),
    "Annie Hall": (("Woody Allen", "Diane Keaton"), ("Woody Allen",)),
    "Manhattan": (("Woody Allen", "Diane Keaton"), ("Woody Allen",)),
}

#: Name pool for movies without known credits (synthetic but plausible).
ACTOR_POOL: Sequence[str] = (
    "Alex Morgan", "Jordan Lee", "Casey Brooks", "Riley Chen", "Morgan Patel",
    "Taylor Reed", "Jamie Flores", "Cameron Ortiz", "Dana Kim", "Avery Novak",
    "Quinn Harper", "Rowan Ellis", "Skyler Dunn", "Peyton Vargas", "Emerson Cole",
    "Finley Hayes", "Sawyer Lane", "Reese Bennett", "Harley Quade", "Marlow West",
)

DIRECTOR_POOL: Sequence[str] = (
    "Pat Calloway", "Sam Whitfield", "Lee Andrada", "Chris Okafor", "Robin Sato",
    "Drew Mercer", "Sidney Vale", "Blake Aldridge", "Noel Iverson", "Toni Marsh",
)


def _stable_hash(value: int) -> int:
    """Small deterministic integer hash independent of PYTHONHASHSEED."""
    value = (value ^ 0x9E3779B9) & 0xFFFFFFFF
    value = (value * 2654435761) & 0xFFFFFFFF
    value ^= value >> 16
    return value


@dataclass(frozen=True)
class SyntheticImdbCatalog:
    """Deterministic actor/director assignment for a movie catalogue."""

    actor_pool: Tuple[str, ...] = tuple(ACTOR_POOL)
    director_pool: Tuple[str, ...] = tuple(DIRECTOR_POOL)
    actors_per_movie: int = 2

    def credits_for(self, item: Item) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Return ``(actors, directors)`` for a movie.

        Known titles get their real credits; everything else is assigned from
        the pools using a hash of the item id.
        """
        if item.title in KNOWN_CREDITS:
            return KNOWN_CREDITS[item.title]
        seed = _stable_hash(item.item_id)
        actors = tuple(
            self.actor_pool[(seed + offset * 7) % len(self.actor_pool)]
            for offset in range(self.actors_per_movie)
        )
        directors = (self.director_pool[seed % len(self.director_pool)],)
        return actors, directors

    def enrich(self, item: Item) -> Item:
        """Return a copy of ``item`` with actors/directors filled in.

        Items that already carry credits are returned unchanged.
        """
        if item.actors and item.directors:
            return item
        actors, directors = self.credits_for(item)
        return Item(
            item_id=item.item_id,
            title=item.title,
            year=item.year,
            genres=item.genres,
            actors=item.actors or actors,
            directors=item.directors or directors,
        )

    def directors_in_catalog(self, items: Iterable[Item]) -> List[str]:
        """Sorted distinct directors after enrichment (for UI pick lists)."""
        names = {d for item in items for d in self.enrich(item).directors}
        return sorted(names)

    def actors_in_catalog(self, items: Iterable[Item]) -> List[str]:
        """Sorted distinct actors after enrichment (for UI pick lists)."""
        names = {a for item in items for a in self.enrich(item).actors}
        return sorted(names)


def enrich_with_imdb(
    dataset: RatingDataset, catalog: Optional[SyntheticImdbCatalog] = None
) -> RatingDataset:
    """Return a new dataset whose items carry actor/director attributes (§3)."""
    catalog = catalog or SyntheticImdbCatalog()
    enriched_items = [catalog.enrich(item) for item in dataset.items()]
    return RatingDataset(
        reviewers=list(dataset.reviewers()),
        items=enriched_items,
        ratings=list(dataset.ratings()),
        schema=dataset.schema,
        name=dataset.name,
        validate=False,
    )
