"""Zero-copy export of a :class:`RatingStore` into shared memory.

The process-parallel mining backend (:mod:`repro.server.procpool`) needs every
worker process to see the same immutable store snapshot without paying a
per-task pickle of hundreds of thousands of rating rows.  This module is the
data half of that subsystem:

* :class:`SharedStoreExport` packs **every numpy part** of one store — the
  base columns (item ids, reviewer ids, scores, timestamps), the per-attribute
  ``int32`` code columns, the per-item inverted index (encoded as one
  ``(item_id, start, length)`` table over a concatenated positions array) and
  any built :class:`~repro.data.storage.AttributeIndex` arrays — into a
  **single** ``multiprocessing.shared_memory`` segment, 64-byte aligned, and
  describes the layout in a small picklable :class:`StoreManifest`.
* :func:`attach_store` maps that segment in another process and rebuilds the
  store through :class:`~repro.data.storage.RatingStore._from_parts`; every
  array is a **read-only view over the mapped buffer** — no row is copied on
  attach, and attaching costs O(number of arrays), not O(rows).

Vocabularies travel inside the manifest (they are small string lists, not
per-row data), and the attached store carries a stub dataset: the mining
kernel operates purely on the columnar parts, so workers never need the
Python-object catalogue.

Lifecycle: the **creator** owns the segment.  Workers attach, use, and
``close()``; only the creator ``unlink()``s, and only once every in-flight
task of the epoch has drained (:class:`~repro.server.procpool.ProcessMiningPool`
enforces that ordering).  On Python < 3.13 an attach also registers the name
with the ``resource_tracker`` — harmless, because the tracker process is
shared by the whole process tree and de-duplicates by name, so the creator's
``unlink()`` clears the single entry (see :func:`_attach_segment`); 3.13+
attaches with ``track=False`` and never registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import DataError
from .lattice import CuboidCells, CuboidLattice
from .model import RatingDataset
from .storage import AttributeIndex, RatingStore

__all__ = [
    "ArrayRef",
    "SharedStoreExport",
    "StoreManifest",
    "attach_store",
    "detach_store",
]

#: Alignment of every array inside the segment (cache-line friendly).
_ALIGN = 64

#: Names of the four base row-aligned columns, in layout order.
_BASE_COLUMNS = ("item_ids", "reviewer_ids", "scores", "timestamps")

#: Names of the per-attribute index arrays, in layout order.
_INDEX_ARRAYS = ("counts", "sums", "positives", "negatives", "joint", "bits")

#: Names of the per-cuboid lattice arrays, in layout order.
_LATTICE_ARRAYS = ("keys", "counts", "sums", "offsets", "positions")


@dataclass(frozen=True)
class ArrayRef:
    """Location of one numpy array inside the shared segment.

    Attributes:
        offset: byte offset of the array's first element (64-byte aligned).
        dtype: numpy dtype string (``"int64"``, ``"float64"``, ``"uint8"`` …).
        shape: array shape; multi-dimensional arrays are C-contiguous.
    """

    offset: int
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Total byte size of the referenced array."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class StoreManifest:
    """Everything a worker needs to re-assemble one store from shared memory.

    The manifest is small (array locations, vocabularies, attribute names) and
    picklable; the row data itself never travels through a pipe.  It is sent
    to each worker exactly once per epoch (the worker keeps an epoch-tagged
    attach cache).

    Attributes:
        segment: name of the shared-memory segment holding every array.
        epoch: the store epoch this snapshot belongs to.
        num_rows: number of rating tuples.
        grouping_attributes: the store's factorized attribute names.
        base: layout of the four base columns, keyed by column name.
        codes: layout of the per-attribute ``int32`` code columns.
        vocabularies: per-attribute sorted value lists (``vocab[code]``
            decodes); carried by value — vocabularies are small.
        item_table: layout of the ``(item_id, start, length)`` inverted-index
            table (``int64``, shape ``(n_items, 3)``).
        item_positions: layout of the concatenated per-item position runs the
            table's ``start``/``length`` pairs slice into.
        indexes: layout of every built
            :class:`~repro.data.storage.AttributeIndex` (six arrays each),
            keyed by attribute name.
        index_rows: ``num_rows`` recorded by each exported attribute index.
        lattice_meta: scalar fields of an attached
            :class:`~repro.data.lattice.CuboidLattice` (attributes, arity,
            region attribute, rows, epoch); ``None`` when the store carries
            no lattice.  Accessed via ``getattr`` on the read side so
            manifests pickled before this field existed still load.
        lattice_cuboids: layout of every cuboid's five arrays, keyed by the
            cuboid's attribute combination.
        lattice_dims: each cuboid's vocabulary sizes, keyed the same way.
    """

    segment: str
    epoch: int
    num_rows: int
    grouping_attributes: Tuple[str, ...]
    base: Dict[str, ArrayRef] = field(default_factory=dict)
    codes: Dict[str, ArrayRef] = field(default_factory=dict)
    vocabularies: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    item_table: Optional[ArrayRef] = None
    item_positions: Optional[ArrayRef] = None
    indexes: Dict[str, Dict[str, ArrayRef]] = field(default_factory=dict)
    index_rows: Dict[str, int] = field(default_factory=dict)
    lattice_meta: Optional[Dict[str, object]] = None
    lattice_cuboids: Dict[Tuple[str, ...], Dict[str, ArrayRef]] = field(
        default_factory=dict
    )
    lattice_dims: Dict[Tuple[str, ...], Tuple[int, ...]] = field(default_factory=dict)


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class _Layout:
    """Two-pass segment builder: reserve every array, then copy into place."""

    def __init__(self) -> None:
        self.total = 0
        self._reserved: list[Tuple[int, np.ndarray]] = []

    def reserve(self, array: np.ndarray) -> ArrayRef:
        """Claim an aligned span for ``array`` and return its reference."""
        array = np.ascontiguousarray(array)
        offset = _aligned(self.total)
        self.total = offset + array.nbytes
        self._reserved.append((offset, array))
        return ArrayRef(offset=offset, dtype=str(array.dtype), shape=tuple(array.shape))

    def copy_into(self, buffer: memoryview) -> None:
        """Copy every reserved array into the segment buffer."""
        for offset, array in self._reserved:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=buffer, offset=offset)
            view[...] = array


def _pack_item_index(
    positions_by_item: Dict[int, np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Encode the per-item inverted index as (table, concatenated positions).

    Items are laid out in ascending id order, so the encoding is a pure
    function of the index contents — two exports of the same store are
    byte-identical.
    """
    items = sorted(positions_by_item)
    table = np.zeros((len(items), 3), dtype=np.int64)
    runs = []
    start = 0
    for row, item_id in enumerate(items):
        positions = np.asarray(positions_by_item[item_id], dtype=np.int64)
        table[row] = (item_id, start, positions.shape[0])
        runs.append(positions)
        start += positions.shape[0]
    positions = (
        np.concatenate(runs) if runs else np.array([], dtype=np.int64)
    )
    return table, positions


def _pack_store(store: RatingStore, layout: _Layout) -> Dict[str, object]:
    """Reserve every numpy part of ``store`` in ``layout``.

    Returns the :class:`StoreManifest` field values that describe the packed
    arrays (everything except ``segment`` and ``epoch``, which depend on where
    the bytes land).  Shared by the shm export and the on-disk snapshot writer
    (:mod:`repro.data.durability`) so both serialize the exact same layout.
    """
    base = {
        "item_ids": layout.reserve(store._item_ids),
        "reviewer_ids": layout.reserve(store._reviewer_ids),
        "scores": layout.reserve(store._scores),
        "timestamps": layout.reserve(store._timestamps),
    }
    codes = {
        name: layout.reserve(column)
        for name, column in store._attribute_codes.items()
    }
    vocabularies = {
        name: tuple(str(value) for value in vocabulary.tolist())
        for name, vocabulary in store._vocabularies.items()
    }
    table, positions = _pack_item_index(store._positions_by_item)
    item_table = layout.reserve(table)
    item_positions = layout.reserve(positions)
    indexes: Dict[str, Dict[str, ArrayRef]] = {}
    index_rows: Dict[str, int] = {}
    for name, index in store.built_indexes().items():
        indexes[name] = {
            array_name: layout.reserve(getattr(index, array_name))
            for array_name in _INDEX_ARRAYS
        }
        index_rows[name] = index.num_rows
    lattice = store.lattice()
    lattice_meta: Optional[Dict[str, object]] = None
    lattice_cuboids: Dict[Tuple[str, ...], Dict[str, ArrayRef]] = {}
    lattice_dims: Dict[Tuple[str, ...], Tuple[int, ...]] = {}
    if lattice is not None:
        lattice_meta = {
            "attributes": tuple(lattice.attributes),
            "max_arity": lattice.max_arity,
            "region_attribute": lattice.region_attribute,
            "num_rows": lattice.num_rows,
            "epoch": lattice.epoch,
        }
        for combo, cuboid in lattice.cuboids.items():
            lattice_cuboids[combo] = {
                array_name: layout.reserve(getattr(cuboid, array_name))
                for array_name in _LATTICE_ARRAYS
            }
            lattice_dims[combo] = cuboid.dims
    return {
        "num_rows": len(store),
        "grouping_attributes": tuple(store.grouping_attributes),
        "base": base,
        "codes": codes,
        "vocabularies": vocabularies,
        "item_table": item_table,
        "item_positions": item_positions,
        "indexes": indexes,
        "index_rows": index_rows,
        "lattice_meta": lattice_meta,
        "lattice_cuboids": lattice_cuboids,
        "lattice_dims": lattice_dims,
    }


def _store_from_buffer(
    manifest: StoreManifest, buffer: memoryview, dataset: RatingDataset
) -> RatingStore:
    """Re-assemble a store from a packed buffer described by ``manifest``.

    Every column of the returned store is a read-only zero-copy view into
    ``buffer`` — the caller is responsible for keeping the backing mapping
    (shm segment or mmap'd snapshot file) alive for the store's lifetime.
    """
    table = _view(buffer, manifest.item_table)
    positions = _view(buffer, manifest.item_positions)
    positions_by_item = {
        int(item_id): positions[start : start + length]
        for item_id, start, length in table.tolist()
    }
    vocabularies = {
        name: np.array(values, dtype=object)
        for name, values in manifest.vocabularies.items()
    }
    indexes = {
        name: AttributeIndex(
            name,
            manifest.index_rows[name],
            *(_view(buffer, refs[array_name]) for array_name in _INDEX_ARRAYS),
        )
        for name, refs in manifest.indexes.items()
    }
    # getattr: manifests pickled before the lattice fields existed (old
    # durability snapshots) re-assemble as lattice-free stores.
    lattice_meta = getattr(manifest, "lattice_meta", None)
    lattice = None
    if lattice_meta is not None:
        cuboids = {
            combo: CuboidCells(
                combo,
                manifest.lattice_dims[combo],
                *(_view(buffer, refs[array_name]) for array_name in _LATTICE_ARRAYS),
            )
            for combo, refs in manifest.lattice_cuboids.items()
        }
        lattice = CuboidLattice(
            attributes=tuple(lattice_meta["attributes"]),
            max_arity=int(lattice_meta["max_arity"]),
            region_attribute=str(lattice_meta["region_attribute"]),
            num_rows=int(lattice_meta["num_rows"]),
            epoch=int(lattice_meta["epoch"]),
            cuboids=cuboids,
        )
    return RatingStore._from_parts(
        dataset=dataset,
        grouping_attributes=manifest.grouping_attributes,
        item_ids=_view(buffer, manifest.base["item_ids"]),
        reviewer_ids=_view(buffer, manifest.base["reviewer_ids"]),
        scores=_view(buffer, manifest.base["scores"]),
        timestamps=_view(buffer, manifest.base["timestamps"]),
        positions_by_item=positions_by_item,
        attribute_codes={
            name: _view(buffer, ref) for name, ref in manifest.codes.items()
        },
        vocabularies=vocabularies,
        epoch=manifest.epoch,
        indexes=indexes,
        lattice=lattice,
    )


class SharedStoreExport:
    """One store snapshot exported into one shared-memory segment.

    Created by the serving process when an epoch is published to the process
    pool; the export owns the segment and is the only object allowed to
    unlink it.  The source store is copied **once** at construction (the cost
    of one memcpy over the columns) and is not referenced afterwards, so the
    export's lifetime is independent of the store's.
    """

    def __init__(self, store: RatingStore) -> None:
        # Set before the segment exists so a mid-init failure (allocation or
        # copy error) leaves __del__ → release() a safe no-op instead of an
        # AttributeError that would leak the segment.
        self._released = True
        layout = _Layout()
        fields = _pack_store(store, layout)
        self._shm = shared_memory.SharedMemory(create=True, size=max(layout.total, 1))
        self._released = False
        layout.copy_into(self._shm.buf)
        self.manifest = StoreManifest(
            segment=self._shm.name,
            epoch=store.epoch,
            **fields,
        )

    @property
    def epoch(self) -> int:
        """The exported store's epoch."""
        return self.manifest.epoch

    @property
    def segment_name(self) -> str:
        """Name of the underlying shared-memory segment."""
        return self.manifest.segment

    @property
    def nbytes(self) -> int:
        """Size of the shared segment in bytes."""
        return self._shm.size

    def release(self) -> None:
        """Close and unlink the segment (idempotent; creator side only).

        Call only after every consumer of the epoch has drained — a worker
        still holding the mapping keeps its attached views valid (POSIX
        keeps the memory alive until the last mapping closes), but no new
        attach can succeed once the name is unlinked.
        """
        if self._released:
            return
        self._released = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.release()
        except Exception:
            pass


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without adopting cleanup responsibility.

    Python 3.13+ supports ``track=False`` natively.  On older versions the
    attach re-registers the name with the (process-tree-wide, name-deduped)
    ``resource_tracker`` — a no-op beside the creator's own registration, and
    the creator's ``unlink()`` clears the single entry, so ownership
    effectively stays with the creator either way.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _view(buffer: memoryview, ref: ArrayRef) -> np.ndarray:
    """A read-only array view over one span of the segment (zero-copy)."""
    array = np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype), buffer=buffer, offset=ref.offset
    )
    array.flags.writeable = False
    return array


def attach_store(manifest: StoreManifest) -> RatingStore:
    """Re-assemble a read-only :class:`RatingStore` from a shared segment.

    Every column of the returned store is a zero-copy view into the mapped
    segment; the store keeps the mapping alive through ``_shm_handle`` (close
    it with :func:`detach_store`).  The store carries an **empty stub
    dataset** — mining, slicing and geo exploration run purely on the
    columnar parts; catalogue lookups stay in the serving process.

    Raises:
        DataError: when the segment has disappeared (epoch already retired).
    """
    try:
        shm = _attach_segment(manifest.segment)
    except FileNotFoundError as exc:
        raise DataError(
            f"shared store segment {manifest.segment!r} (epoch {manifest.epoch}) "
            "is gone — the epoch was retired"
        ) from exc
    dataset = RatingDataset(
        reviewers=(),
        items=(),
        ratings=(),
        name=f"shm-epoch-{manifest.epoch}",
        validate=False,
    )
    store = _store_from_buffer(manifest, shm.buf, dataset)
    store._shm_handle = shm  # keeps the mapping alive with the store
    return store


def detach_store(store: RatingStore) -> None:
    """Close the shared mapping behind a store returned by :func:`attach_store`."""
    handle = getattr(store, "_shm_handle", None)
    if handle is not None:
        handle.close()
        store._shm_handle = None
