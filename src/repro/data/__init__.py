"""Data model and storage substrate for collaborative rating sites.

The package models a collaborative rating site ``D = <I, U, R>`` exactly as in
§2.1 of the paper: a set of items ``I``, a set of reviewers ``U`` and a set of
rating triples ``R``.  Both reviewers and items carry categorical attributes;
reviewer attributes (age, gender, occupation, location) are what the mining
layer builds groups from, item attributes (title, genre, actor, director) are
what the query layer searches over.
"""

from .model import Item, Rating, RatingDataset, Reviewer
from .schema import (
    AGE_GROUPS,
    GENDERS,
    GENRES,
    OCCUPATIONS,
    AttributeSchema,
    DatasetSchema,
    age_group_for,
    default_schema,
)
from .storage import AttributeIndex, RatingStore
from .shm import SharedStoreExport, StoreManifest, attach_store, detach_store
from .ingest import (
    AppendBuffer,
    CompactionDelta,
    CompactionResult,
    LiveStore,
    compact_snapshot,
    rating_from_dict,
    reviewer_from_dict,
)
from .synthetic import SyntheticConfig, SyntheticMovieLens, generate_dataset
from .movielens import load_movielens_directory, write_movielens_directory
from .imdb import SyntheticImdbCatalog, enrich_with_imdb

__all__ = [
    "Item",
    "Rating",
    "RatingDataset",
    "Reviewer",
    "AGE_GROUPS",
    "GENDERS",
    "GENRES",
    "OCCUPATIONS",
    "AttributeSchema",
    "DatasetSchema",
    "age_group_for",
    "default_schema",
    "RatingStore",
    "AttributeIndex",
    "SharedStoreExport",
    "StoreManifest",
    "attach_store",
    "detach_store",
    "AppendBuffer",
    "CompactionDelta",
    "CompactionResult",
    "LiveStore",
    "compact_snapshot",
    "rating_from_dict",
    "reviewer_from_dict",
    "SyntheticConfig",
    "SyntheticMovieLens",
    "generate_dataset",
    "load_movielens_directory",
    "write_movielens_directory",
    "SyntheticImdbCatalog",
    "enrich_with_imdb",
]
