"""Durability primitives: write-ahead log records and mmap'd store snapshots.

The live-ingestion subsystem (:mod:`repro.data.ingest`) is purely in-memory:
a crash loses every buffered rating and every compacted epoch past the base
dataset.  This module supplies the two on-disk primitives the recovery layer
(:mod:`repro.server.recovery`) composes into crash safety:

* **Write-ahead log** — every accepted ingest op (rating + optional
  new-reviewer record) is appended to a per-epoch log file *before* the
  in-memory buffer mutates.  Records are length-prefixed and
  CRC32-checksummed (``[u32 length][u32 crc32][payload]``, little-endian);
  the payload is a deterministic compact JSON encoding, so two logs of the
  same op sequence are byte-identical.  The fsync policy is configurable:
  ``"always"`` (fsync per record), ``"batch"`` (fsync once per
  ingest/ingest_batch call) or ``"never"`` (leave flushing to the OS).
* **Snapshot files** — one compacted store serialized through the exact same
  pack format the shared-memory export uses
  (:func:`repro.data.shm._pack_store` + :class:`~repro.data.shm.StoreManifest`
  with an empty segment name), prefixed by a small checksummed header and the
  pickled manifest.  :func:`load_snapshot` maps the file read-only with
  ``mmap`` and rebuilds the store as **zero-copy views over the mapping** via
  :meth:`~repro.data.storage.RatingStore._from_parts` — a warm restart pays
  page-cache faults, not an array copy.  Snapshots are written atomically:
  the bytes go to a ``.tmp`` sibling, are fsynced, and ``os.replace`` makes
  the snapshot visible in one step (a crash mid-write leaves only ignorable
  tmp garbage, never a half-visible snapshot).

Failure vocabulary (see :mod:`repro.errors`): a *torn tail* — an incomplete
or checksum-failing record that runs to the exact end of a log — is the
expected signature of a crash mid-append and is reported, not raised;
corruption anywhere before the tail raises
:class:`~repro.errors.WalCorruptionError` because silently truncating
committed history is worse than refusing to start.  Snapshot files that fail
their magic, version, size or CRC checks raise
:class:`~repro.errors.SnapshotFormatError`; a snapshot that does not match
the base dataset it is being recovered against raises
:class:`~repro.errors.RecoveryError`.

Fault injection: the WAL and the snapshot writer accept an optional
``fault(point, **context)`` hook invoked at the four crash-critical points
(``"wal.append"``, ``"wal.rotate"``, ``"snapshot.write"``,
``"snapshot.rename"``).  The production default is ``None``; the
kill-and-recover property harness raises from the hook (optionally after
writing a partial record itself) to simulate a process death at that exact
byte.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import RecoveryError, SnapshotFormatError, WalCorruptionError
from .model import Rating, RatingDataset, Reviewer
from .shm import StoreManifest, _aligned, _Layout, _pack_store, _store_from_buffer
from .storage import RatingStore

__all__ = [
    "FSYNC_POLICIES",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "WalScan",
    "WriteAheadLog",
    "decode_ingest_op",
    "encode_ingest_op",
    "frame_record",
    "load_snapshot",
    "read_wal",
    "truncate_wal",
    "write_snapshot",
]

#: Framing of one WAL record: payload length, CRC32 of the payload.
_RECORD_HEADER = struct.Struct("<II")

#: Magic bytes opening every snapshot file.
SNAPSHOT_MAGIC = b"MAPRSNAP"

#: Current snapshot format version; readers reject anything newer.
SNAPSHOT_VERSION = 1

#: Snapshot header: magic, version, flags, epoch, meta length, data length,
#: CRC32 of the pickled meta block, CRC32 of the array region (48 bytes).
_SNAPSHOT_HEADER = struct.Struct("<8sIIQQQII")

#: Allowed fsync policies, strictest first.
FSYNC_POLICIES = ("always", "batch", "never")

#: Type of the fault-injection hook (``None`` in production).
FaultHook = Optional[Callable[..., None]]


# -- WAL record encoding ----------------------------------------------------------


def encode_ingest_op(rating: Rating, reviewer: Optional[Reviewer] = None) -> bytes:
    """Serialize one accepted ingest op as a deterministic JSON payload.

    The encoding is canonical (sorted keys, no whitespace) so identical op
    sequences produce byte-identical logs; floats use ``repr`` round-tripping,
    so the decoded score is bit-equal to the ingested one.
    """
    op = {
        "rating": [
            rating.item_id,
            rating.reviewer_id,
            float(rating.score),
            rating.timestamp,
        ],
        "reviewer": None
        if reviewer is None
        else {
            "reviewer_id": reviewer.reviewer_id,
            "gender": reviewer.gender,
            "age": reviewer.age,
            "occupation": reviewer.occupation,
            "zipcode": reviewer.zipcode,
            "state": reviewer.state,
            "city": reviewer.city,
        },
    }
    return json.dumps(op, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_ingest_op(payload: bytes) -> Tuple[Rating, Optional[Reviewer]]:
    """Inverse of :func:`encode_ingest_op` (raises ``ValueError``-family on garbage)."""
    op = json.loads(payload.decode("utf-8"))
    item_id, reviewer_id, score, timestamp = op["rating"]
    rating = Rating(
        item_id=int(item_id),
        reviewer_id=int(reviewer_id),
        score=float(score),
        timestamp=int(timestamp),
    )
    record = op.get("reviewer")
    reviewer = None if record is None else Reviewer(**record)
    return rating, reviewer


def frame_record(payload: bytes) -> bytes:
    """Wrap a payload in the ``[length][crc32]`` record framing."""
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


# -- WAL scanning -----------------------------------------------------------------


@dataclass
class WalScan:
    """Result of scanning one write-ahead log file.

    Attributes:
        ops: the decoded ``(rating, reviewer-or-None)`` ops, in log order.
        valid_bytes: length of the valid prefix (records before any torn tail).
        torn_bytes: bytes of torn tail after the valid prefix (0 when clean).
    """

    ops: List[Tuple[Rating, Optional[Reviewer]]]
    valid_bytes: int
    torn_bytes: int

    @property
    def torn(self) -> bool:
        """True when the log ends in an incomplete or checksum-failing record."""
        return self.torn_bytes > 0


def read_wal(path) -> WalScan:
    """Scan a write-ahead log, tolerating a torn tail but nothing else.

    A record that cannot complete — too few bytes for its header, a length
    running past EOF, or a CRC failure on the **final** record — is a torn
    tail: the crash signature the log design expects.  Its bytes are counted
    in ``torn_bytes`` and the valid prefix is returned.  A CRC or decode
    failure on any record *before* the tail raises
    :class:`~repro.errors.WalCorruptionError`: committed history was damaged
    after the fact, and recovery must not silently drop it.  A missing file
    reads as an empty log (a crash can land before the first append).
    """
    path = Path(path)
    if not path.exists():
        return WalScan(ops=[], valid_bytes=0, torn_bytes=0)
    data = path.read_bytes()
    total = len(data)
    ops: List[Tuple[Rating, Optional[Reviewer]]] = []
    offset = 0
    torn = 0
    while offset < total:
        if total - offset < _RECORD_HEADER.size:
            torn = total - offset
            break
        length, crc = _RECORD_HEADER.unpack_from(data, offset)
        start = offset + _RECORD_HEADER.size
        end = start + length
        if end > total:
            torn = total - offset
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            if end == total:
                torn = total - offset
                break
            raise WalCorruptionError(
                f"checksum mismatch in {Path(path).name} at byte {offset} "
                f"(record {len(ops)}): the record is not the final one, so this "
                "is damage to committed history, not a crash tail"
            )
        try:
            ops.append(decode_ingest_op(payload))
        except (KeyError, TypeError, ValueError) as exc:
            raise WalCorruptionError(
                f"undecodable record {len(ops)} in {Path(path).name} "
                f"at byte {offset}: {exc}"
            ) from exc
        offset = end
    return WalScan(ops=ops, valid_bytes=offset, torn_bytes=torn)


def truncate_wal(path, valid_bytes: int) -> None:
    """Drop a torn tail by truncating the log to its valid prefix (fsynced)."""
    with open(path, "r+b") as handle:
        handle.truncate(valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())


# -- WAL writing ------------------------------------------------------------------


class WriteAheadLog:
    """Appender over one per-epoch log file.

    The file is opened unbuffered (``buffering=0``) so every ``write()``
    reaches the file object's OS-level file immediately — the only layer that
    can hold back bytes is the kernel page cache, which the fsync policy
    controls.  That also makes simulated crashes deterministic: what the
    fault hook sees on disk is exactly what was appended.

    Args:
        path: log file path (created/appended; parent directory must exist).
        fsync: ``"always"`` | ``"batch"`` | ``"never"`` — when to fsync.
        fault: optional fault-injection hook (see module docstring).
    """

    def __init__(self, path, fsync: str = "batch", fault: FaultHook = None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}; use one of {FSYNC_POLICIES}")
        self.path = Path(path)
        self.fsync_policy = fsync
        self._fault = fault
        self._file = open(self.path, "ab", buffering=0)
        self._dirty = False
        self._closed = False
        self.records_appended = 0

    def append(self, rating: Rating, reviewer: Optional[Reviewer] = None) -> None:
        """Append one framed op record (fsyncs under the ``"always"`` policy)."""
        record = frame_record(encode_ingest_op(rating, reviewer))
        if self._fault is not None:
            self._fault("wal.append", path=self.path, file=self._file, data=record)
        self._file.write(record)
        self.records_appended += 1
        if self.fsync_policy == "always":
            os.fsync(self._file.fileno())
        else:
            self._dirty = True

    def commit(self) -> None:
        """Durability point of one ingest call (fsync under ``"batch"``)."""
        if self._closed or not self._dirty:
            return
        if self.fsync_policy == "batch":
            os.fsync(self._file.fileno())
        self._dirty = False

    @property
    def nbytes(self) -> int:
        """Current size of the log file in bytes."""
        return self.path.stat().st_size

    def close(self) -> None:
        """Seal the log: final fsync (unless policy ``"never"``) and close.

        Idempotent — the rotation path and ``MapRat.close()`` may both reach
        the same log.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self.fsync_policy != "never":
                os.fsync(self._file.fileno())
        finally:
            self._file.close()


# -- snapshots --------------------------------------------------------------------


def write_snapshot(
    store: RatingStore,
    path,
    base_rows: int,
    base_reviewers: int,
    fault: FaultHook = None,
) -> dict:
    """Atomically write one compacted store to ``path``.

    The array region reuses the shared-memory pack byte-for-byte
    (:func:`~repro.data.shm._pack_store`); the meta block additionally records
    how the store's dataset relates to the *base* dataset (the one loaded at
    startup): ``base_rows``/``base_reviewers`` count the base prefix, and the
    reviewers registered since then travel in the snapshot so the catalogue
    can be reconstructed without replaying history.

    The write is atomic: bytes land in ``<path>.tmp``, are fsynced, and
    ``os.replace`` publishes the snapshot in one step (the directory is
    fsynced after, so the rename itself is durable).  Returns a small stats
    dict (``path``, ``bytes``, ``epoch``).
    """
    path = Path(path)
    layout = _Layout()
    fields = _pack_store(store, layout)
    manifest = StoreManifest(segment="", epoch=store.epoch, **fields)
    appended_reviewers = list(store.dataset.reviewers())[base_reviewers:]
    meta = pickle.dumps(
        {
            "manifest": manifest,
            "base_rows": int(base_rows),
            "base_reviewers": int(base_reviewers),
            "appended_reviewers": appended_reviewers,
            "dataset_name": store.dataset.name,
            "num_items": store.dataset.num_items,
        },
        protocol=4,
    )
    data_offset = _aligned(_SNAPSHOT_HEADER.size + len(meta))
    blob = bytearray(data_offset + layout.total)
    blob[_SNAPSHOT_HEADER.size : _SNAPSHOT_HEADER.size + len(meta)] = meta
    layout.copy_into(memoryview(blob)[data_offset:])
    _SNAPSHOT_HEADER.pack_into(
        blob,
        0,
        SNAPSHOT_MAGIC,
        SNAPSHOT_VERSION,
        0,
        store.epoch,
        len(meta),
        layout.total,
        zlib.crc32(meta),
        zlib.crc32(memoryview(blob)[data_offset:]),
    )
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        if fault is not None:
            fault("snapshot.write", path=tmp, file=handle, data=blob)
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    if fault is not None:
        fault("snapshot.rename", tmp=tmp, path=path)
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    return {"path": str(path), "bytes": len(blob), "epoch": store.epoch}


def _fsync_dir(directory: Path) -> None:
    """Make a rename/create in ``directory`` durable (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def load_snapshot(path, base_dataset: RatingDataset) -> RatingStore:
    """Map a snapshot file and rebuild its store zero-copy.

    Every column of the returned store is a read-only view into the
    ``mmap``-ed file (kept alive through ``store._mmap_handle``); only the
    post-base rating tail and the reviewer catalogue are materialised as
    Python objects, because the dataset layer needs them for catalogue
    lookups and later compactions.

    Raises:
        SnapshotFormatError: bad magic, newer format version, truncation or
            checksum mismatch — the file is not a usable snapshot.
        RecoveryError: a structurally valid snapshot that was not produced
            on top of ``base_dataset``.
    """
    path = Path(path)
    handle = open(path, "rb")
    try:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:
            raise SnapshotFormatError(f"snapshot {path.name} is empty") from exc
        try:
            if len(mapped) < _SNAPSHOT_HEADER.size:
                raise SnapshotFormatError(
                    f"snapshot {path.name} is truncated inside its header"
                )
            magic, version, _flags, epoch, meta_len, data_len, meta_crc, data_crc = (
                _SNAPSHOT_HEADER.unpack_from(mapped, 0)
            )
            if magic != SNAPSHOT_MAGIC:
                raise SnapshotFormatError(f"{path.name} is not a MapRat snapshot")
            if version > SNAPSHOT_VERSION:
                raise SnapshotFormatError(
                    f"snapshot {path.name} uses format version {version}; this "
                    f"build reads versions up to {SNAPSHOT_VERSION} — upgrade the "
                    "server before loading it"
                )
            data_offset = _aligned(_SNAPSHOT_HEADER.size + meta_len)
            if len(mapped) < data_offset + data_len:
                raise SnapshotFormatError(
                    f"snapshot {path.name} is truncated: header promises "
                    f"{data_offset + data_len} bytes, file has {len(mapped)}"
                )
            view = memoryview(mapped)
            meta_bytes = bytes(view[_SNAPSHOT_HEADER.size : _SNAPSHOT_HEADER.size + meta_len])
            if zlib.crc32(meta_bytes) != meta_crc:
                raise SnapshotFormatError(
                    f"snapshot {path.name}: meta block checksum mismatch"
                )
            if zlib.crc32(view[data_offset : data_offset + data_len]) != data_crc:
                raise SnapshotFormatError(
                    f"snapshot {path.name}: array region checksum mismatch"
                )
            meta = pickle.loads(meta_bytes)
            _check_fingerprint(meta, base_dataset, path)
            manifest: StoreManifest = meta["manifest"]
            dataset = _rebuild_dataset(meta, manifest, view[data_offset:], base_dataset)
            store = _store_from_buffer(manifest, view[data_offset:], dataset)
            store._mmap_handle = (mapped, handle)
            return store
        except BaseException:
            try:
                mapped.close()
            except BufferError:
                # A zero-copy view escaped before the failure (e.g. a
                # fingerprint mismatch after arrays were built); the mapping
                # is reclaimed with the views by the garbage collector.
                pass
            raise
    except BaseException:
        handle.close()
        raise


def _check_fingerprint(meta: dict, base_dataset: RatingDataset, path: Path) -> None:
    """Refuse to recover a snapshot written over a different base dataset."""
    mismatches = []
    if meta["dataset_name"] != base_dataset.name:
        mismatches.append(
            f"dataset name {meta['dataset_name']!r} != {base_dataset.name!r}"
        )
    if meta["base_rows"] != base_dataset.num_ratings:
        mismatches.append(
            f"base rows {meta['base_rows']} != {base_dataset.num_ratings}"
        )
    if meta["base_reviewers"] != base_dataset.num_reviewers:
        mismatches.append(
            f"base reviewers {meta['base_reviewers']} != {base_dataset.num_reviewers}"
        )
    if meta["num_items"] != base_dataset.num_items:
        mismatches.append(f"items {meta['num_items']} != {base_dataset.num_items}")
    if mismatches:
        raise RecoveryError(
            f"snapshot {path.name} was not written over this base dataset: "
            + "; ".join(mismatches)
        )


def _rebuild_dataset(
    meta: dict,
    manifest: StoreManifest,
    data: memoryview,
    base_dataset: RatingDataset,
) -> RatingDataset:
    """Reconstruct the full catalogue: base dataset + snapshot-carried tail.

    The rating tail (rows past ``base_rows``) is decoded from the snapshot's
    own columns, so the catalogue matches the arrays exactly even if the WAL
    that produced those rows is long gone.
    """
    base_rows = meta["base_rows"]

    def column(name: str) -> np.ndarray:
        ref = manifest.base[name]
        return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=data, offset=ref.offset)

    item_ids = column("item_ids")[base_rows:].tolist()
    reviewer_ids = column("reviewer_ids")[base_rows:].tolist()
    scores = column("scores")[base_rows:].tolist()
    timestamps = column("timestamps")[base_rows:].tolist()
    tail = [
        Rating(item_id=i, reviewer_id=u, score=s, timestamp=t)
        for i, u, s, t in zip(item_ids, reviewer_ids, scores, timestamps)
    ]
    return RatingDataset(
        reviewers=list(base_dataset.reviewers()) + list(meta["appended_reviewers"]),
        items=list(base_dataset.items()),
        ratings=list(base_dataset.ratings()) + tail,
        schema=base_dataset.schema,
        name=meta["dataset_name"],
        validate=False,
    )
