"""Fleet wire format: framed TCP transport and the consistent-hash ring.

The sharded backend (PR 8) partitions an epoch into K per-shard stores, but
its segments only travel over ``/dev/shm`` — every worker must live on the
serving box.  This module is the transport half of the multi-host fleet
backend (:mod:`repro.server.fleet`): it moves the exact same artifacts —
picklable :class:`~repro.data.shm.StoreManifest` metadata plus the packed
store bytes — over a TCP socket instead of a shared-memory segment.

Three layers, smallest first:

* **Frames** — the unit of transmission is one length-prefixed,
  CRC32-checksummed frame (``[u32 length][u32 crc32][payload]``,
  little-endian — the exact record framing of the write-ahead log in
  :mod:`repro.data.durability`, applied to a socket instead of a file).  A
  frame that cannot complete (peer closed mid-frame), fails its checksum or
  declares a length beyond the negotiated maximum raises a typed
  :class:`~repro.errors.WireProtocolError`; a clean close *between* frames
  reads as end-of-stream (``None``), the socket equivalent of end-of-file.
* **Messages** — one pickled tuple per frame (``("task", spec)``,
  ``("result", ok, blob)``, …).  Undecodable payloads raise
  :class:`~repro.errors.WireProtocolError`, never a bare pickle error.
* **Store shipping** — :func:`pack_store_bytes` serializes a store through
  the exact shared-memory pack format (:func:`repro.data.shm._pack_store`),
  so one byte layout serves shm segments, durability snapshots and the
  wire; :func:`store_from_bytes` re-assembles a read-only store over the
  received buffer, zero-copy, exactly like :func:`repro.data.shm.attach_store`
  does over a mapped segment.

:class:`HashRing` is the routing half: a consistent-hash ring over worker
names with virtual nodes.  Hashes are BLAKE2b digests of the key bytes —
pure functions of their input, independent of ``PYTHONHASHSEED``, identical
across processes and machines — so every coordinator incarnation routes a
shard to the same replica set, and adding one worker to N reassigns only
about ``1/(N+1)`` of the keys (the classic minimal-reshuffle property).
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import zlib
from bisect import bisect_right
from typing import Iterable, List, Optional, Tuple

from ..errors import WireProtocolError
from .model import RatingDataset
from .shm import StoreManifest, _Layout, _pack_store, _store_from_buffer
from .storage import RatingStore

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FRAME_HEADER",
    "HashRing",
    "pack_store_bytes",
    "recv_frame",
    "recv_message",
    "send_frame",
    "send_message",
    "store_from_bytes",
]

#: Framing of one wire frame: payload length, CRC32 of the payload — the
#: same header the write-ahead log puts before every record.
FRAME_HEADER = struct.Struct("<II")

#: Largest frame either side accepts by default (256 MiB comfortably holds
#: the packed segment of a multi-million-row shard).
DEFAULT_MAX_FRAME_BYTES = 256 << 20

#: Virtual nodes per worker on the consistent-hash ring.  More vnodes mean a
#: smoother key split and a reshuffle closer to the ideal 1/N on membership
#: change, at the cost of a (tiny) larger sorted ring.
DEFAULT_VNODES = 64


# -- frames ------------------------------------------------------------------------


def send_frame(sock, payload: bytes) -> None:
    """Write one framed payload to a socket (length + CRC32 + bytes)."""
    header = FRAME_HEADER.pack(len(payload), zlib.crc32(payload))
    sock.sendall(header + payload)


def _recv_exactly(sock, count: int, allow_eof: bool) -> Optional[bytes]:
    """Read exactly ``count`` bytes from a socket.

    Returns ``None`` when the peer closed the connection before the first
    byte **and** ``allow_eof`` is set (the clean between-frames close);
    raises :class:`~repro.errors.WireProtocolError` when the stream ends
    anywhere else — a torn frame, the socket twin of the WAL's torn tail.
    """
    chunks: List[bytes] = []
    received = 0
    while received < count:
        chunk = sock.recv(min(count - received, 1 << 20))
        if not chunk:
            if received == 0 and allow_eof:
                return None
            raise WireProtocolError(
                f"connection closed mid-frame ({received} of {count} bytes)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[bytes]:
    """Read one framed payload; ``None`` on a clean end-of-stream.

    Raises :class:`~repro.errors.WireProtocolError` on a torn frame (peer
    vanished mid-frame), a declared length beyond ``max_frame_bytes`` (a
    garbage or hostile header — reading it would buffer unbounded data) or
    a CRC32 mismatch (corruption in transit or a desynchronised stream).
    """
    header = _recv_exactly(sock, FRAME_HEADER.size, allow_eof=True)
    if header is None:
        return None
    length, crc = FRAME_HEADER.unpack(header)
    if length > max_frame_bytes:
        raise WireProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte "
            "maximum (garbage header or misconfigured peer)"
        )
    payload = _recv_exactly(sock, length, allow_eof=False)
    if zlib.crc32(payload) != crc:
        raise WireProtocolError(
            f"frame checksum mismatch over {length} bytes "
            "(corruption in transit or a desynchronised stream)"
        )
    return payload


# -- messages ----------------------------------------------------------------------


def send_message(sock, message: tuple) -> None:
    """Send one protocol message (a picklable tuple) as a single frame."""
    send_frame(sock, pickle.dumps(message))


def recv_message(
    sock, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[tuple]:
    """Receive one protocol message; ``None`` on a clean end-of-stream.

    A frame that decodes but does not unpickle to a tuple raises
    :class:`~repro.errors.WireProtocolError` — the stream carries something
    that is not this protocol.
    """
    payload = recv_frame(sock, max_frame_bytes)
    if payload is None:
        return None
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise WireProtocolError(f"undecodable wire message: {exc}") from exc
    if not isinstance(message, tuple) or not message:
        raise WireProtocolError(
            f"wire message must be a non-empty tuple, got {type(message).__name__}"
        )
    return message


# -- store shipping ----------------------------------------------------------------


def pack_store_bytes(
    store: RatingStore, name: str = ""
) -> Tuple[StoreManifest, bytes]:
    """Serialize one store into (manifest, packed bytes) for shipping.

    The byte layout is exactly the shared-memory segment layout
    (:func:`repro.data.shm._pack_store`): 64-byte-aligned arrays, the
    inverted item index as one ``(item_id, start, length)`` table, built
    attribute indexes and any attached lattice included.  ``name`` fills
    the manifest's ``segment`` field (a logical label — there is no shm
    segment behind it).
    """
    layout = _Layout()
    fields = _pack_store(store, layout)
    buffer = bytearray(max(layout.total, 1))
    layout.copy_into(memoryview(buffer))
    manifest = StoreManifest(segment=name, epoch=store.epoch, **fields)
    return manifest, bytes(buffer)


def store_from_bytes(manifest: StoreManifest, data: bytes) -> RatingStore:
    """Re-assemble a read-only store over a received packed buffer.

    Every column is a zero-copy view into ``data`` (kept alive through the
    store's ``_wire_buffer`` attribute), and the store carries an empty stub
    dataset exactly like a shared-memory attach — mining runs purely on the
    columnar parts.
    """
    dataset = RatingDataset(
        reviewers=(),
        items=(),
        ratings=(),
        name=f"wire-epoch-{manifest.epoch}",
        validate=False,
    )
    store = _store_from_buffer(manifest, memoryview(data), dataset)
    store._wire_buffer = data  # keeps the backing bytes alive with the store
    return store


# -- consistent-hash ring ----------------------------------------------------------


def stable_hash(key: str) -> int:
    """A 64-bit stable hash of a string key.

    BLAKE2b over the UTF-8 bytes: a pure function of the key, independent
    of ``PYTHONHASHSEED``, Python version and platform — never the salted
    builtin ``hash()``.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashRing:
    """Consistent-hash ring over worker names with virtual nodes.

    Each worker contributes ``vnodes`` points at
    ``stable_hash(f"{name}#{i}")``; a key routes to the owner of the first
    ring point at or after ``stable_hash(key)``, wrapping around.  Replica
    lookups continue clockwise, skipping points of workers already chosen,
    so the R replicas of a key are R *distinct* workers in a stable order.

    Membership changes are minimal by construction: removing a worker only
    reassigns the keys it owned; adding one to N existing workers claims
    roughly ``1/(N+1)`` of the key space and moves nothing else.
    """

    def __init__(
        self, workers: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = int(vnodes)
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._workers: set = set()
        for name in workers:
            self.add(name)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, name: str) -> bool:
        return str(name) in self._workers

    @property
    def workers(self) -> Tuple[str, ...]:
        """The current members, sorted by name."""
        return tuple(sorted(self._workers))

    def _rebuild(self) -> None:
        self._points.sort()
        self._hashes = [point for point, _ in self._points]

    def add(self, name: str) -> None:
        """Add one worker's virtual nodes to the ring (idempotent)."""
        name = str(name)
        if name in self._workers:
            return
        self._workers.add(name)
        for index in range(self.vnodes):
            self._points.append((stable_hash(f"{name}#{index}"), name))
        self._rebuild()

    def remove(self, name: str) -> None:
        """Remove one worker from the ring (idempotent)."""
        name = str(name)
        if name not in self._workers:
            return
        self._workers.discard(name)
        self._points = [point for point in self._points if point[1] != name]
        self._hashes = [point for point, _ in self._points]

    def lookup(self, key: str, count: int = 1) -> List[str]:
        """The first ``count`` distinct workers clockwise of ``key``.

        Returns fewer than ``count`` names when the ring holds fewer
        workers, and an empty list on an empty ring — the caller decides
        whether that is an error.
        """
        if not self._points or count < 1:
            return []
        start = bisect_right(self._hashes, stable_hash(str(key)))
        chosen: List[str] = []
        total = len(self._points)
        for step in range(total):
            _, name = self._points[(start + step) % total]
            if name not in chosen:
                chosen.append(name)
                if len(chosen) >= count:
                    break
        return chosen
