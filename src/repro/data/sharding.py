"""Data sharding: partition a :class:`RatingStore` into K per-shard stores.

The process backend (PR 5) parallelises over *anchors*: every worker attaches
the whole store through one shared-memory segment, so the dataset ceiling is
one box's RAM.  This module is the data-parallel half of the sharded backend
(``ServerConfig.mining_backend="sharded"``): a store is partitioned into K
disjoint row sets, each exported as its own
:class:`~repro.data.shm.SharedStoreExport` segment, and
:class:`~repro.server.shardpool.ShardedMiningPool` scatters per-shard cube
work that a coordinator merges losslessly (see
:mod:`repro.core.shardmerge`).

Two partitioning schemes are provided:

* ``"reviewer"`` (default): rows are assigned by a SplitMix64-style avalanche
  hash of the reviewer id.  The hash is a pure function of the id (stable
  across processes and Python runs — never ``hash()``, which is salted by
  ``PYTHONHASHSEED``), so *any* reviewer id, including ones first seen by a
  later ingest, lands in a well-defined bucket and both coordinator and
  workers agree on it without coordination.
* ``"region"``: rows are assigned by a CRC32 hash of the reviewer's state
  value, so one state's rows live entirely inside one shard and a
  within-region mining task touches exactly one shard.

Both schemes preserve the *relative store-row order* inside each shard: a
shard's rows are the store's rows with that bucket, in ascending position
order.  That invariant is what makes the scatter-gather merge exact — shard-
local slice position ``i`` corresponds to global slice position
``localmap[i]``, where the localmap is computed with the same assignment
function over the global slice's columns.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..config import GEO_ATTRIBUTE
from ..errors import DataError
from .shm import SharedStoreExport, StoreManifest
from .storage import RatingSlice, RatingStore

__all__ = [
    "SHARD_SCHEMES",
    "ShardManifest",
    "export_shards",
    "partition_store",
    "region_shards",
    "reviewer_shards",
    "slice_shards",
    "store_shards",
]

#: Supported partitioning schemes.
SHARD_SCHEMES = ("reviewer", "region")

#: SplitMix64 finalizer constants (Steele et al., "Fast splittable
#: pseudorandom number generators") — a full-avalanche 64-bit mix.
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def _check_shards(num_shards: int) -> int:
    shards = int(num_shards)
    if shards < 1:
        raise DataError("num_shards must be at least 1")
    return shards


def reviewer_shards(reviewer_ids: np.ndarray, num_shards: int) -> np.ndarray:
    """Shard id per row from a stable avalanche hash of the reviewer id.

    Deterministic across processes, machines and Python invocations; ids
    never seen before (future ingests) hash into the same fixed bucket
    space, so routing needs no membership table.
    """
    shards = _check_shards(num_shards)
    x = np.asarray(reviewer_ids, dtype=np.int64).astype(np.uint64)
    x = x ^ (x >> np.uint64(30))
    x = x * _MIX_1
    x = x ^ (x >> np.uint64(27))
    x = x * _MIX_2
    x = x ^ (x >> np.uint64(31))
    return (x % np.uint64(shards)).astype(np.int64)


def region_bucket(value: str, num_shards: int) -> int:
    """The shard one region value (e.g. a state code) is pinned to."""
    shards = _check_shards(num_shards)
    return int(zlib.crc32(str(value).encode("utf-8")) % shards)


def region_shards(
    codes: np.ndarray, vocabulary: np.ndarray, num_shards: int
) -> np.ndarray:
    """Shard id per row from a CRC32 hash of the row's region *value*.

    Hashing the string value (not the integer code) keeps the assignment
    independent of vocabulary growth: a compaction that inserts a new state
    shifts codes but never moves an existing state to a different shard.
    """
    shards = _check_shards(num_shards)
    per_code = np.array(
        [region_bucket(value, shards) for value in vocabulary.tolist()],
        dtype=np.int64,
    )
    codes = np.asarray(codes)
    if codes.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    return per_code[codes]


def slice_shards(
    rating_slice: RatingSlice, num_shards: int, scheme: str = "reviewer"
) -> np.ndarray:
    """Per-row shard assignment of a slice (the coordinator's localmap seed)."""
    if scheme == "reviewer":
        return reviewer_shards(rating_slice.reviewer_ids, num_shards)
    if scheme == "region":
        return region_shards(
            rating_slice.codes_for(GEO_ATTRIBUTE),
            rating_slice.vocabulary(GEO_ATTRIBUTE),
            num_shards,
        )
    raise DataError(f"unknown shard scheme {scheme!r}; expected one of {SHARD_SCHEMES}")


def store_shards(
    store: RatingStore, num_shards: int, scheme: str = "reviewer"
) -> np.ndarray:
    """Per-row shard assignment of a whole store (the partitioning seed)."""
    if scheme == "reviewer":
        return reviewer_shards(store._reviewer_ids, num_shards)
    if scheme == "region":
        return region_shards(
            store.codes_for(GEO_ATTRIBUTE),
            store.vocabulary_for(GEO_ATTRIBUTE),
            num_shards,
        )
    raise DataError(f"unknown shard scheme {scheme!r}; expected one of {SHARD_SCHEMES}")


def _item_index_for(item_ids: np.ndarray) -> Dict[int, np.ndarray]:
    """Per-item position lists over a shard's (local) row numbering."""
    if item_ids.shape[0] == 0:
        return {}
    order = np.argsort(item_ids, kind="stable")
    sorted_items = item_ids[order]
    unique_items, starts = np.unique(sorted_items, return_index=True)
    segments = np.split(order, starts[1:])
    return {
        int(item_id): segment
        for item_id, segment in zip(unique_items.tolist(), segments)
    }


def partition_store(
    store: RatingStore, num_shards: int, scheme: str = "reviewer"
) -> List[RatingStore]:
    """Split a store into ``num_shards`` disjoint row-subset stores.

    Each shard is a full :class:`RatingStore` (same epoch, same grouping
    attributes, *shared* vocabulary arrays — codes stay comparable across
    shards and with the parent) holding the parent's rows of its bucket in
    ascending position order.  Empty shards are valid stores with zero rows.
    The union of the shards' rows is exactly the parent's rows; nothing is
    copied beyond the gathered column arrays.
    """
    shards = _check_shards(num_shards)
    assignment = store_shards(store, shards, scheme)
    vocabularies = dict(store._vocabularies)  # shared arrays, codes stay aligned
    parts: List[RatingStore] = []
    for shard_id in range(shards):
        rows = np.flatnonzero(assignment == shard_id)
        item_ids = store._item_ids[rows]
        parts.append(
            RatingStore._from_parts(
                store.dataset,
                store.grouping_attributes,
                item_ids,
                store._reviewer_ids[rows],
                store._scores[rows],
                store._timestamps[rows],
                _item_index_for(item_ids),
                {
                    name: codes[rows]
                    for name, codes in store._attribute_codes.items()
                },
                vocabularies,
                store.epoch,
            )
        )
    return parts


@dataclass(frozen=True)
class ShardManifest:
    """Picklable description of one epoch's sharded export.

    Bundles the per-shard :class:`~repro.data.shm.StoreManifest` handles with
    the partitioning parameters, so a (future multi-host) worker fleet can be
    handed one object and attach any shard of the epoch.  Pickles cleanly:
    every field is plain data or a ``StoreManifest`` (itself picklable).

    Attributes:
        scheme: partitioning scheme the rows were assigned with.
        num_shards: shard count K.
        epoch: store epoch all shards belong to.
        shards: one ``StoreManifest`` per shard, indexed by shard id.
        row_counts: rows per shard (diagnostics; sums to the parent's rows).
    """

    scheme: str
    num_shards: int
    epoch: int
    shards: Tuple[StoreManifest, ...]
    row_counts: Tuple[int, ...]

    @property
    def total_rows(self) -> int:
        """Total rows across all shards (== the parent store's rows)."""
        return int(sum(self.row_counts))


def export_shards(
    shard_stores: List[RatingStore], scheme: str
) -> Tuple[List[SharedStoreExport], ShardManifest]:
    """Export partitioned shard stores to shared memory with one manifest.

    Returns the per-shard exports (creator-owned: release each to unlink)
    and the :class:`ShardManifest` describing them.  Empty shards export
    fine — the segment layout pads zero-row stores to a minimal segment.
    """
    if not shard_stores:
        raise DataError("export_shards needs at least one shard store")
    exports: List[SharedStoreExport] = []
    try:
        for shard_store in shard_stores:
            exports.append(SharedStoreExport(shard_store))
    except BaseException:
        for export in exports:
            export.release()
        raise
    manifest = ShardManifest(
        scheme=scheme,
        num_shards=len(shard_stores),
        epoch=int(shard_stores[0].epoch),
        shards=tuple(export.manifest for export in exports),
        row_counts=tuple(len(shard_store) for shard_store in shard_stores),
    )
    return exports, manifest
