"""Exception hierarchy for the MapRat reproduction.

All library-raised exceptions derive from :class:`MapRatError` so callers can
catch a single base class.  Each subclass marks one failure domain (data,
query, mining, geo, visualization, server) which mirrors the package layout.
"""

from __future__ import annotations


class MapRatError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class DataError(MapRatError):
    """Raised when a dataset is malformed or violates the ⟨I, U, R⟩ model."""


class SchemaError(DataError):
    """Raised when an attribute value does not conform to its schema."""


class DatasetFormatError(DataError):
    """Raised when an on-disk dataset file cannot be parsed."""


class IngestError(DataError):
    """Raised when an ingested rating or reviewer fails validation.

    Covers referential failures (unknown item, unknown reviewer without an
    accompanying reviewer record), scale violations and malformed ingest
    payloads.  The JSON layer maps it to a 400 response.
    """


class DurabilityError(DataError):
    """Base class of the durability subsystem (WAL, snapshots, recovery)."""


class WalCorruptionError(DurabilityError):
    """Raised when a write-ahead log holds a corrupt *non-final* record.

    A torn final record is the expected signature of a crash mid-append and
    is tolerated (the tail is dropped on recovery); a CRC or framing failure
    anywhere before the tail means the log was damaged after it was written
    and recovery refuses to silently truncate committed history.
    """


class SnapshotFormatError(DurabilityError):
    """Raised when a snapshot file cannot be read (bad magic, CRC mismatch,
    truncation, or a format version newer than this build understands)."""


class RecoveryError(DurabilityError):
    """Raised when the on-disk state cannot be reconciled with the base
    dataset (fingerprint mismatch, a gap in the WAL chain, an unreplayable
    record)."""


class WireProtocolError(MapRatError):
    """Raised when a fleet wire frame or message cannot be decoded.

    Covers torn frames (the peer closed mid-frame), CRC32 checksum
    mismatches, frames larger than the negotiated maximum and undecodable
    message payloads.  The fleet coordinator treats it as a transport
    failure of one worker — it fails over to a replica instead of failing
    the request — and surfaces it directly when no replica remains.
    """


class GeoError(MapRatError):
    """Raised when a location (zip code, state, city) cannot be resolved."""


class QueryError(MapRatError):
    """Raised when an item query cannot be parsed or evaluated."""


class QuerySyntaxError(QueryError):
    """Raised for malformed query strings (unbalanced quotes, bad operators)."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class UnknownAttributeError(QueryError):
    """Raised when a query references an attribute absent from the schema."""


class MiningError(MapRatError):
    """Raised when a mining task cannot be set up or solved."""


class InfeasibleProblemError(MiningError):
    """Raised when no group selection can satisfy the stated constraints."""


class EmptyRatingSetError(MiningError):
    """Raised when the item query matches no rating tuples."""


class ConstraintError(MiningError):
    """Raised when a constraint is configured with invalid parameters."""


class VisualizationError(MapRatError):
    """Raised when an explanation cannot be rendered (e.g. missing geo pair)."""


class ExplorationError(MapRatError):
    """Raised by the interactive-exploration layer (drill-down, timeline)."""


class CacheError(MapRatError):
    """Raised by the result cache / pre-computation layer."""


class PoolError(MapRatError):
    """Raised by the mining worker pool for invalid configuration or use."""


class StaleEpochError(PoolError):
    """Raised when a task targets a store epoch the process pool has retired.

    A request that grabbed its :class:`~repro.server.api.ServingState` just
    before a compaction may submit mining work for the superseded epoch after
    its shared-memory segments have drained and been unlinked.  The façade
    retries such a request once against the current serving state.
    """


class MiningTimeoutError(PoolError):
    """Raised when a mining task exceeds the configured per-request deadline.

    The deadline (``ServerConfig.mining_timeout_s``) bounds how long a
    request blocks on its pool futures; the underlying task is **not**
    cancelled (threads and worker processes run it to completion), the
    gatherer just stops waiting.  The JSON layer maps it to a 503.
    """


class ServerError(MapRatError):
    """Raised by the JSON API layer for invalid requests."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status
