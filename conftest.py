"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (offline environments without the ``wheel`` package cannot complete
a PEP 660 editable install).  When ``repro`` is already installed this is a
no-op: the installed location simply wins if it appears first on ``sys.path``.

Also registers the suite's markers and options:

* ``slow`` — long-running tests excluded from tier-1 (``-m "not slow"``),
* ``property`` — property-based equivalence tests (auto-applied to
  everything under ``tests/property/``),
* ``--update-golden`` — rewrite the golden response files of
  ``tests/server/test_golden_api.py`` instead of comparing against them.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden JSON files under tests/server/golden/",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test, excluded from tier-1 (-m 'not slow')"
    )
    config.addinivalue_line(
        "markers", "property: property-based equivalence test (tests/property/)"
    )


def pytest_collection_modifyitems(config, items):
    import os

    import pytest

    property_dir = str(Path(__file__).resolve().parent / "tests" / "property") + os.sep
    for item in items:
        if str(item.fspath).startswith(property_dir):
            item.add_marker(pytest.mark.property)
