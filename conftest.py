"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (offline environments without the ``wheel`` package cannot complete
a PEP 660 editable install).  When ``repro`` is already installed this is a
no-op: the installed location simply wins if it appears first on ``sys.path``.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
