#!/usr/bin/env python
"""Process-parallel mining: backend selection and multi-core throughput.

Demonstrates ``ServerConfig.mining_backend``::

    python examples/process_serving.py

The same MapRat system is built twice — once on the default **thread**
backend (GIL-bound: mining shards across threads but executes on one core)
and once on the **process** backend, where each store epoch is exported once
into shared memory and persistent worker processes attach it zero-copy and
mine in true parallel.  A small closed-loop driver then explains a set of
popular items cold (cache off) through both systems and reports throughput;
finally one result is compared field-by-field to prove the backends
bit-identical, and a live compaction shows the epoch hand-off (the old
shared segment is retired only after in-flight work drains).

Set ``MAPRAT_SCALE=tiny`` / ``MAPRAT_SMOKE=1`` for the test suite's quick
run.  Expect the process backend to pull ahead of the thread backend on
multi-core machines (≥2× at 4 cores on the benchmark workload — see
``docs/BENCHMARKS.md``); on a single core it mostly demonstrates the wiring.
"""

import json
import os
import threading
import time

from repro import MapRat, MiningConfig, PipelineConfig, generate_dataset
from repro.config import ServerConfig


def build_system(dataset, backend: str, workers: int) -> MapRat:
    config = PipelineConfig(
        mining=MiningConfig(max_groups=3, min_coverage=0.25, min_group_support=3),
        server=ServerConfig(mining_backend=backend, mining_workers=workers),
    )
    return MapRat.for_dataset(dataset, config)


def drive(system: MapRat, anchors, clients: int) -> float:
    """Explain every anchor cold through ``clients`` closed-loop threads."""
    queue = list(enumerate(anchors))
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                if not queue:
                    return
                _, item_ids = queue.pop()
            system.explain_items(item_ids, use_cache=False)

    started = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started


def normalized(payload: dict) -> dict:
    payload = json.loads(json.dumps(payload))

    def strip(node):
        if isinstance(node, dict):
            return {k: strip(v) for k, v in node.items() if k != "elapsed_seconds"}
        if isinstance(node, list):
            return [strip(v) for v in node]
        return node

    return strip(payload)


def main() -> None:
    scale = os.environ.get("MAPRAT_SCALE", "small")
    smoke = bool(os.environ.get("MAPRAT_SMOKE"))
    workers = 2 if smoke else max(2, min(4, os.cpu_count() or 1))
    clients = workers * 2
    num_anchors = 4 if smoke else 16

    print(f"Generating the synthetic dataset ({scale} scale)...")
    dataset = generate_dataset(scale)

    elapsed = {}
    results = {}
    for backend in ("thread", "process"):
        system = build_system(dataset, backend, workers)
        try:
            anchors = [
                [aggregate.item_id]
                for aggregate in system.precomputer.top_items(limit=num_anchors)
            ]
            pool_info = system.pool.to_dict()
            print(
                f"\n[{backend}] pool: workers={pool_info['workers']} "
                f"parallel={pool_info['parallel']}"
            )
            elapsed[backend] = drive(system, anchors, clients)
            print(
                f"[{backend}] {len(anchors)} cold explains with {clients} clients: "
                f"{elapsed[backend]:.2f}s "
                f"({len(anchors) / elapsed[backend]:.1f} explains/s)"
            )
            results[backend] = normalized(
                system.explain_items(anchors[0][:1], use_cache=False).to_dict()
            )
            if backend == "process":
                # Live epoch turnover: ingest one rating, compact, keep serving.
                reviewer_id = next(iter(dataset.reviewers())).reviewer_id
                system.ingest(anchors[0][0], reviewer_id, 5.0, timestamp=1_700_000_000)
                compaction = system.compact()
                print(
                    f"[process] compacted into epoch {compaction['epoch']} "
                    f"(mode={compaction['mode']}); "
                    f"live epochs now {system.pool.to_dict()['live_epochs']}"
                )
                system.explain_items(anchors[0][:1], use_cache=False)
        finally:
            system.close()

    assert results["thread"] == results["process"], "backends must be bit-identical"
    speedup = elapsed["thread"] / elapsed["process"] if elapsed["process"] else 0.0
    print(
        f"\nBackends bit-identical; process/thread speedup on this machine "
        f"({os.cpu_count()} core(s)): {speedup:.2f}x"
    )
    print("On >=4 cores the process backend sustains >=2x end-to-end explain "
          "throughput (see docs/BENCHMARKS.md).")


if __name__ == "__main__":
    main()
