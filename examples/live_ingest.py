#!/usr/bin/env python
"""Live ingestion: ratings arrive while the system keeps serving.

Demonstrates the epoch-versioned write path::

    python examples/live_ingest.py

A MapRat system starts on a frozen snapshot (epoch 0).  New ratings — from
existing reviewers and from a brand-new reviewer whose zip code the snapshot
has never seen — stream into the append buffer; explanations served in the
meantime keep answering from the current snapshot.  A compaction then folds
the buffer into epoch 1 *incrementally* (vocabulary remap + delta bincounts,
no rebuild), the cache migrates (untouched entries carried forward, touched
anchors re-warmed), and the same query immediately reflects the new ratings.

Set ``MAPRAT_SCALE=tiny`` to run on the smallest preset (the test suite's
examples smoke test does).
"""

import os

from repro import MapRat, MiningConfig, PipelineConfig, generate_dataset
from repro.config import ServerConfig


def main() -> None:
    scale = os.environ.get("MAPRAT_SCALE", "small")
    print(f"Generating the synthetic MovieLens-shaped dataset ({scale} scale)...")
    dataset = generate_dataset(scale)

    config = PipelineConfig(
        mining=MiningConfig(max_groups=3, min_coverage=0.25, min_group_support=3),
        server=ServerConfig(auto_compact_threshold=0),  # compact explicitly below
    )
    maprat = MapRat.for_dataset(dataset, config)

    query = 'title:"Toy Story"'
    before = maprat.explain(query)
    toy_story_id = before.query.item_ids[0]
    print(f"\nEpoch {maprat.epoch}: {query} has {before.query.num_ratings} ratings")

    print("\nIngesting 5 new ratings from existing reviewers...")
    reviewers = [reviewer.reviewer_id for reviewer in dataset.reviewers()][:5]
    for step, reviewer_id in enumerate(reviewers):
        outcome = maprat.ingest(
            toy_story_id, reviewer_id, 5.0, timestamp=1_700_000_000 + step
        )
        print(f"  reviewer {reviewer_id}: {outcome['status']} "
              f"(buffered={outcome['buffered']}, epoch={outcome['epoch']})")

    print("\nRegistering a brand-new reviewer (unseen zip code) via ingest_batch...")
    batch = maprat.ingest_batch([
        {
            "item_id": toy_story_id,
            "reviewer_id": 10_000_001,
            "score": 1,
            "timestamp": 1_700_000_100,
            "reviewer": {
                "gender": "F",
                "age": 25,
                "occupation": "scientist",
                "zipcode": "99501",  # Anchorage — vocabulary growth
            },
        },
    ])
    print(f"  accepted={batch['accepted']}, buffered={batch['buffered']}")

    mid = maprat.explain(query)
    print(f"\nStill epoch {maprat.epoch} while buffering: "
          f"{mid.query.num_ratings} ratings served (readers never block)")

    print("\nCompacting the buffer into the next epoch...")
    compaction = maprat.compact()
    delta = compaction["delta"]
    print(f"  epoch {compaction['previous_epoch']} -> {compaction['epoch']} "
          f"({compaction['mode']}, {delta['num_rows']} rows appended)")
    print(f"  vocabulary growth: {delta['vocabulary_growth'] or 'none'}")
    print(f"  cache: {compaction['carried_entries']} entries carried forward, "
          f"{compaction['invalidated_entries']} invalidated, "
          f"{compaction['rewarmed']} anchors re-warmed")

    after = maprat.explain(query)
    print(f"\nEpoch {maprat.epoch}: {query} now has {after.query.num_ratings} ratings "
          f"(+{after.query.num_ratings - before.query.num_ratings})")

    stats = maprat.store_stats()
    print(f"\nstore_stats: epoch={stats['epoch']}, rows={stats['rows']}, "
          f"accepted={stats['accepted_total']}, compactions={stats['compactions']}")


if __name__ == "__main__":
    main()
