#!/usr/bin/env python
"""Run MapRat on a real MovieLens-1M directory (or export a synthetic stand-in).

The demo uses the GroupLens MovieLens-1M dataset (§3).  If you have the
original ``ml-1m`` directory (``users.dat``, ``movies.dat``, ``ratings.dat``),
point this script at it and MapRat runs on the real data::

    python examples/movielens_import.py /path/to/ml-1m

Without an argument the script instead *exports* the synthetic dataset in the
MovieLens on-disk format (so you can inspect it or feed it to other tools) and
then loads it back through the same parser, proving the loader path works
end-to-end offline.
"""

import os
import sys
from pathlib import Path

from repro import MapRat, MiningConfig, PipelineConfig, generate_dataset
from repro.data.movielens import load_movielens_directory, write_movielens_directory
from repro.viz.text import render_result_text


def main() -> None:
    if len(sys.argv) > 1:
        directory = Path(sys.argv[1])
        print(f"Loading MovieLens data from {directory} ...")
        dataset = load_movielens_directory(directory)
    else:
        directory = Path("examples_output/ml-synthetic")
        print("No MovieLens directory given; exporting the synthetic dataset to "
              f"{directory} and loading it back ...")
        source = generate_dataset(os.environ.get("MAPRAT_SCALE", "small"))
        write_movielens_directory(source, directory)
        dataset = load_movielens_directory(directory, name="synthetic-export")

    print(f"  {dataset.num_ratings} ratings, {dataset.num_reviewers} reviewers, "
          f"{dataset.num_items} movies")

    maprat = MapRat.for_dataset(
        dataset, PipelineConfig(mining=MiningConfig(max_groups=3, min_coverage=0.25))
    )
    top = maprat.precomputer.top_items(limit=3)
    print("\nMost rated movies:")
    for aggregate in top:
        print(f"  {aggregate.title:<40s} {aggregate.count:>6d} ratings, "
              f"avg {aggregate.average:.2f}")

    query = f'title:"{top[0].title}"'
    print(f"\nExplaining {query} ...\n")
    print(render_result_text(maprat.explain(query)))


if __name__ == "__main__":
    main()
