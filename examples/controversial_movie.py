#!/usr/bin/env python
"""Reproduce the §1 "Twilight Saga: Eclipse" Diversity Mining example.

The paper motivates Diversity Mining with a controversial movie: the overall
average hides that "male reviewers under 18 and female reviewers under 18
consistently disagree on their ratings for the movie: the former group hates
it while the latter loves it".

This script runs both mining tasks on the planted controversial movie of the
synthetic dataset and prints the contrast between the single overall aggregate
(what rating sites show today) and the mined interpretations::

    python examples/controversial_movie.py
"""

import os

from repro import MapRat, MiningConfig, PipelineConfig, generate_dataset
from repro.explore.statistics import group_statistics
from repro.viz.text import render_explanation_text


def main() -> None:
    dataset = generate_dataset(os.environ.get("MAPRAT_SCALE", "small"))
    maprat = MapRat.for_dataset(dataset, PipelineConfig())
    query = 'title:"The Twilight Saga: Eclipse"'

    # The DM example of §1 is about demographic (gender × age) groups, so we
    # relax the geo-anchoring constraint for this run.
    config = MiningConfig(
        max_groups=3,
        min_coverage=0.2,
        require_geo_anchor=False,
        grouping_attributes=("gender", "age_group", "occupation"),
    )
    result = maprat.explain(query, config=config)

    print(f"Query: {query}")
    print(f"Overall average rating: {result.query.average_rating:.2f} "
          f"({result.query.num_ratings} ratings)")
    print("That single number hides the real structure:\n")

    print(render_explanation_text(result.diversity))
    print()
    print(render_explanation_text(result.similarity))

    rating_slice = maprat.miner.slice_for_items(result.query.item_ids)
    female_teens = group_statistics(rating_slice, {"gender": "F", "age_group": "Under 18"})
    male_teens = group_statistics(rating_slice, {"gender": "M", "age_group": "Under 18"})
    print("\nThe paper's exact contrast:")
    print(f"  female reviewers under 18: avg {female_teens.mean:.2f} "
          f"({female_teens.size} ratings, {female_teens.share_positive:.0%} positive)")
    print(f"  male reviewers under 18:   avg {male_teens.mean:.2f} "
          f"({male_teens.size} ratings, {male_teens.share_negative:.0%} negative)")
    print(f"  gap: {female_teens.mean - male_teens.mean:+.2f} rating points")


if __name__ == "__main__":
    main()
