#!/usr/bin/env python
"""Reproduce the Figure 1 → Figure 2 walkthrough for "Toy Story".

The paper's walkthrough: the user types the query of Figure 1 ("Toy Story",
query type Movie Name, three groups, a coverage setting), clicks *Explain
Ratings*, and gets the two choropleth tabs of Figure 2 (Similarity Mining and
Diversity Mining), where the best SM groups turn out to be male reviewers from
California, male reviewers from Massachusetts and young female students from
New York.

Running this script regenerates those artefacts from the synthetic dataset::

    python examples/explain_movie.py [output_directory]

It writes ``toy_story_explanation.html`` (the full Figure-2 page) plus one SVG
choropleth per mining task, and prints the selected groups.
"""

import os
import sys
from pathlib import Path

from repro import MapRat, MiningConfig, PipelineConfig, generate_dataset
from repro.viz.choropleth import ChoroplethMap
from repro.viz.report import ExplanationReport
from repro.viz.text import render_result_text


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("examples_output")
    output_dir.mkdir(parents=True, exist_ok=True)

    dataset = generate_dataset(os.environ.get("MAPRAT_SCALE", "small"))
    # The search settings of Figure 1: at most three groups.  A 15% coverage
    # target matches the granularity of the paper's example groups (each of
    # the three Figure-2 segments covers roughly 5% of the ratings).
    config = PipelineConfig(mining=MiningConfig(max_groups=3, min_coverage=0.15))
    maprat = MapRat.for_dataset(dataset, config)

    query = 'title:"Toy Story"'
    result = maprat.explain(query)
    print(render_result_text(result))

    report_path = output_dir / "toy_story_explanation.html"
    ExplanationReport().render_to_file(result, str(report_path), title=f"MapRat — {query}")
    print(f"\nwrote {report_path}")

    choropleth = ChoroplethMap()
    for explanation in result.explanations():
        svg_path = output_dir / f"toy_story_{explanation.task}.svg"
        choropleth.render_to_file(explanation, str(svg_path))
        print(f"wrote {svg_path}")

    planted = {"male reviewers from California"}
    found = {group.label for group in result.similarity.groups}
    if planted & found:
        print("\nThe planted Figure-2 group (male reviewers from California) was recovered.")
    else:
        print("\nNote: the planted group was not in the top-3 this run; inspect the HTML report.")


if __name__ == "__main__":
    main()
