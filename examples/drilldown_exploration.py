#!/usr/bin/env python
"""Reproduce the Figure 3 exploration: click a group, see statistics, drill down.

Figure 3 shows what happens when the user clicks the result "Male reviewers
from California": detailed rating statistics for the group, a comparison with
the related groups, and the possibility to drill down to city-level aggregate
statistics (§3.1).

Running this script drives the same interaction through
:class:`repro.explore.session.ExplorationSession` and writes the exploration
HTML page::

    python examples/drilldown_exploration.py [output_directory]
"""

import os
import sys
from pathlib import Path

from repro import MapRat, MiningConfig, PipelineConfig, generate_dataset


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("examples_output")
    output_dir.mkdir(parents=True, exist_ok=True)

    dataset = generate_dataset(os.environ.get("MAPRAT_SCALE", "small"))
    maprat = MapRat.for_dataset(
        dataset, PipelineConfig(mining=MiningConfig(max_groups=3, min_coverage=0.25))
    )
    session = maprat.session()

    query = 'title:"Toy Story"'
    session.explain_query(query)
    group = session.select_group(0, task="similarity")
    print(f"Selected group: {group.label} "
          f"(avg {group.average_rating:.2f}, {group.size} ratings)\n")

    stats = session.group_statistics()
    print("Rating statistics (the Figure 3 panel):")
    print(f"  mean {stats.mean:.2f}  median {stats.median:.1f}  std {stats.std:.2f}")
    print(f"  {stats.share_positive:.0%} rate it 4★ or higher, "
          f"{stats.share_negative:.0%} rate it 2★ or lower")
    print(f"  histogram: " + ", ".join(f"{k}★×{v}" for k, v in sorted(stats.histogram.items())))

    print("\nComparison with the other selected groups:")
    for row in session.compare_selected_groups():
        print(f"  {row.label:<45s} avg {row.mean:.2f}  ({row.size} ratings)")

    print("\nCity-level drill-down (§3.1):")
    for aggregate in session.drill_down():
        city_stats = aggregate.statistics
        print(f"  {aggregate.location:<18s} avg {city_stats.mean:.2f}  ({city_stats.size} ratings)")

    html = maprat.exploration_html(query, task="similarity", group_index=0)
    path = output_dir / "toy_story_exploration.html"
    path.write_text(html, encoding="utf-8")
    print(f"\nwrote {path}")
    print("\nSession history:", " → ".join(session.history()))


if __name__ == "__main__":
    main()
