#!/usr/bin/env python
"""Quickstart: generate a dataset, explain a movie, print the interpretations.

This is the smallest end-to-end use of the public API::

    python examples/quickstart.py

It generates a MovieLens-shaped synthetic dataset, asks MapRat to explain the
ratings of "Toy Story", and prints the Similarity Mining and Diversity Mining
interpretations as text tables (the terminal equivalent of Figure 2).
"""

from repro import MapRat, MiningConfig, PipelineConfig, generate_dataset
from repro.viz.text import render_result_text


def main() -> None:
    print("Generating the synthetic MovieLens-shaped dataset (small scale)...")
    dataset = generate_dataset("small")
    print(f"  {dataset.num_ratings} ratings, {dataset.num_reviewers} reviewers, "
          f"{dataset.num_items} movies\n")

    config = PipelineConfig(mining=MiningConfig(max_groups=3, min_coverage=0.25))
    maprat = MapRat.for_dataset(dataset, config)

    query = 'title:"Toy Story"'
    print(f"Explaining ratings for {query} ...\n")
    result = maprat.explain(query)
    print(render_result_text(result))

    print("\nThe same result is available as JSON through result.to_dict(), as a")
    print("choropleth SVG through repro.viz.render_explanation_map(), and as a")
    print("self-contained HTML report through MapRat.explanation_html().")


if __name__ == "__main__":
    main()
