#!/usr/bin/env python
"""Quickstart: generate a dataset, explain a movie, print the interpretations.

This is the smallest end-to-end use of the public API::

    python examples/quickstart.py

It generates a MovieLens-shaped synthetic dataset, asks MapRat to explain the
ratings of "Toy Story", prints the Similarity Mining and Diversity Mining
interpretations as text tables (the terminal equivalent of Figure 2), and
finishes with the geo serving surface: where the movie is rated, and why its
top region rates it the way it does.

Set ``MAPRAT_SCALE=tiny`` to run on the smallest preset (the test suite's
examples smoke test does).
"""

import os

from repro import MapRat, MiningConfig, PipelineConfig, generate_dataset
from repro.viz.text import render_result_text


def main() -> None:
    scale = os.environ.get("MAPRAT_SCALE", "small")
    print(f"Generating the synthetic MovieLens-shaped dataset ({scale} scale)...")
    dataset = generate_dataset(scale)
    print(f"  {dataset.num_ratings} ratings, {dataset.num_reviewers} reviewers, "
          f"{dataset.num_items} movies\n")

    config = PipelineConfig(
        mining=MiningConfig(max_groups=3, min_coverage=0.25, min_group_support=3)
    )
    maprat = MapRat.for_dataset(dataset, config)

    query = 'title:"Toy Story"'
    print(f"Explaining ratings for {query} ...\n")
    result = maprat.explain(query)
    print(render_result_text(result))

    print("\nWhere is it rated? (geo_summary, top 5 states)")
    summary = maprat.geo_summary(query)
    for region in summary["regions"][:5]:
        print(f"  {region['region']}: {region['size']} ratings, "
              f"avg {region['average']:.2f} (lift {region['lift']:+.2f})")

    top_region = summary["regions"][0]["region"]
    print(f"\nWhy does {top_region} rate it this way? (geo_explain)")
    geo = maprat.geo_explain(query, top_region)
    for group in geo.similarity.groups:
        print(f"  {group.label}: avg {group.average_rating:.2f}")

    print("\nThe same results are available as JSON through result.to_dict(), as a")
    print("choropleth SVG through MapRat.choropleth(), and as a self-contained")
    print("HTML report through MapRat.explanation_html().")


if __name__ == "__main__":
    main()
