#!/usr/bin/env python
"""Reproduce the time-slider exploration of §3.1.

"Moving the time slider over the range of values allows the user to observe
reviewer groups that provide best interpretations for the movie and how they
change over time."

This script uses the planted drifting movie of the synthetic dataset (loved in
its first year, disliked by the end) to show both readings of the time
dimension: the per-year interpretations and the trend of the overall (and one
demographic) group.  It also writes the trend chart SVG::

    python examples/temporal_exploration.py [output_directory]
"""

import os
import sys
from pathlib import Path

from repro import MapRat, MiningConfig, PipelineConfig, generate_dataset
from repro.viz.charts import render_trend_chart


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("examples_output")
    output_dir.mkdir(parents=True, exist_ok=True)

    dataset = generate_dataset(os.environ.get("MAPRAT_SCALE", "small"))
    maprat = MapRat.for_dataset(
        dataset, PipelineConfig(mining=MiningConfig(max_groups=3, min_coverage=0.25))
    )

    query = 'title:"Drifting Star"'
    print(f"Time-slider exploration for {query}\n")

    print("Per-year interpretations (the groups the slider shows):")
    for timeline_slice in maprat.timeline(query, min_ratings=20):
        if timeline_slice.result is None:
            print(f"  {timeline_slice.year}: only {timeline_slice.num_ratings} ratings, skipped")
            continue
        average = timeline_slice.result.query.average_rating
        labels = ", ".join(timeline_slice.labels("similarity"))
        print(f"  {timeline_slice.year}: avg {average:.2f} over "
              f"{timeline_slice.num_ratings} ratings — SM groups: {labels}")

    print("\nTrend of the overall rating (and of male reviewers) per year:")
    overall = maprat.group_trend(query, {})
    males = maprat.group_trend(query, {"gender": "M"})
    male_by_year = {point.year: point for point in males}
    for point in overall:
        male_mean = male_by_year.get(point.year)
        male_text = f", male reviewers {male_mean.mean:.2f}" if male_mean else ""
        print(f"  {point.year}: all reviewers {point.mean:.2f}{male_text}")

    drift = overall[-1].mean - overall[0].mean
    print(f"\nDrift over the full range: {drift:+.2f} rating points "
          "(the movie aged badly, as planted).")

    svg = render_trend_chart(
        [(point.year, point.mean) for point in overall],
        title="Drifting Star — average rating per year",
    )
    path = output_dir / "drifting_star_trend.svg"
    path.write_text(svg, encoding="utf-8")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
