#!/usr/bin/env python
"""Serve the MapRat web front-end locally (the demo of §3).

Starts the dependency-free HTTP server over a synthetic dataset, pre-computes
the explanations of the most popular movies (the §2.3 latency techniques) and
then serves:

* ``/``            — landing page with a search box,
* ``/explain?q=…`` — the Figure-2 explanation report,
* ``/explore?q=…`` — the Figure-3 exploration report,
* ``/api/…``       — the JSON API.

Usage::

    python examples/web_demo.py [port] [scale]

``scale`` is one of tiny/small/medium (default small; the ``MAPRAT_SCALE``
environment variable overrides it).  Stop with Ctrl-C.  With ``MAPRAT_SMOKE``
set, the server starts on an ephemeral port, answers one request per surface
(landing page, JSON summary, geo summary) and stops — the mode the examples
smoke test uses.
"""

import json
import os
import sys
from urllib.request import urlopen

from repro import MiningConfig, PipelineConfig, generate_dataset
from repro.server.app import run_server


def main() -> None:
    smoke = bool(os.environ.get("MAPRAT_SMOKE"))
    port = int(sys.argv[1]) if len(sys.argv) > 1 and not smoke else 0 if smoke else 8912
    scale = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.environ.get("MAPRAT_SCALE", "small")
    )

    print(f"Generating the {scale} synthetic dataset ...")
    dataset = generate_dataset(scale)
    config = PipelineConfig(mining=MiningConfig(max_groups=3, min_coverage=0.25))

    print("Starting the server and pre-computing popular movies (§2.3) ...")
    server = run_server(dataset, config, port=port, warm_up=10)
    print(f"MapRat is serving at {server.url}")
    if smoke:
        for path in ("/", "/api/summary", "/api/geo_summary"):
            with urlopen(server.url + path) as response:
                body = response.read()
                print(f"  GET {path} -> {response.status} ({len(body)} bytes)")
            if path == "/api/geo_summary":
                summary = json.loads(body)
                print(f"  geo_summary covers {len(summary['regions'])} states")
        server.stop()
        print("smoke run complete")
        return
    print(f"  try {server.url}/explain?q=title%3A%22Toy%20Story%22")
    print("  press Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
        print("stopped")


if __name__ == "__main__":
    main()
